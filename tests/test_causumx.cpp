// End-to-end tests for Algorithm 1 (the CauSumX pipeline) against the
// synthetic ground truth and the framework's constraints.

#include <gtest/gtest.h>

#include "core/causumx.h"
#include "datagen/synthetic.h"
#include "util/bitset.h"

namespace causumx {
namespace {

CauSumXConfig SyntheticConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.75;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

TEST(CauSumXTest, SyntheticGroundTruthRecovered) {
  SyntheticOptions opt;
  opt.num_rows = 2000;
  opt.num_treatment_attrs = 4;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));

  ASSERT_FALSE(result.summary.explanations.empty());
  for (const auto& exp : result.summary.explanations) {
    // Positive treatments must set odd T's high or even T's low.
    ASSERT_TRUE(exp.positive.has_value());
    EXPECT_GT(exp.positive->effect.cate, 0);
    for (const auto& pred : exp.positive->pattern.predicates()) {
      const int t_index = std::stoi(pred.attribute.substr(1));
      const int64_t v = pred.value.AsInt();
      if (t_index % 2 == 1) {
        EXPECT_GE(v, 4) << pred.ToString();  // odd T: high value
      } else {
        EXPECT_LE(v, 2) << pred.ToString();  // even T: low value
      }
    }
    // Negative treatments: the reverse.
    ASSERT_TRUE(exp.negative.has_value());
    EXPECT_LT(exp.negative->effect.cate, 0);
    for (const auto& pred : exp.negative->pattern.predicates()) {
      const int t_index = std::stoi(pred.attribute.substr(1));
      const int64_t v = pred.value.AsInt();
      if (t_index % 2 == 1) {
        EXPECT_LE(v, 2) << pred.ToString();
      } else {
        EXPECT_GE(v, 4) << pred.ToString();
      }
    }
  }
}

TEST(CauSumXTest, ConstraintsRespected) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.k = 2;
  config.theta = 0.4;
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  EXPECT_LE(result.summary.explanations.size(), 2u);
  if (result.summary.coverage_satisfied) {
    EXPECT_GE(result.summary.CoverageFraction(), 0.4 - 1e-9);
  }
  // Incomparability: no two selected explanations share a coverage set.
  for (size_t i = 0; i < result.summary.explanations.size(); ++i) {
    for (size_t j = i + 1; j < result.summary.explanations.size(); ++j) {
      EXPECT_FALSE(result.summary.explanations[i].group_coverage ==
                   result.summary.explanations[j].group_coverage);
    }
  }
}

TEST(CauSumXTest, TotalExplainabilityIsSumOfWeights) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  double sum = 0;
  for (const auto& e : result.summary.explanations) sum += e.Weight();
  EXPECT_NEAR(result.summary.total_explainability, sum, 1e-9);
}

TEST(CauSumXTest, CoverageCountMatchesUnion) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  Bitset covered(result.summary.num_groups);
  for (const auto& e : result.summary.explanations) {
    covered |= e.group_coverage;
  }
  EXPECT_EQ(result.summary.covered_groups, covered.Count());
}

TEST(CauSumXTest, SolverVariantsAllProduceResults) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);

  config.solver = FinalStepSolver::kLpRounding;
  const auto lp = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.solver = FinalStepSolver::kGreedy;
  const auto greedy = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.solver = FinalStepSolver::kExact;
  const auto exact = RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  EXPECT_FALSE(lp.summary.explanations.empty());
  EXPECT_FALSE(greedy.summary.explanations.empty());
  EXPECT_FALSE(exact.summary.explanations.empty());
  // Exact dominates the rounded solution in explainability whenever both
  // satisfy the constraints.
  if (exact.summary.coverage_satisfied && lp.summary.coverage_satisfied) {
    EXPECT_GE(exact.summary.total_explainability + 1e-6,
              lp.summary.total_explainability);
  }
}

TEST(CauSumXTest, DeterministicAcrossRuns) {
  SyntheticOptions opt;
  opt.num_rows = 1000;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.num_threads = 2;
  const auto a = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  const auto b = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  ASSERT_EQ(a.summary.explanations.size(), b.summary.explanations.size());
  EXPECT_DOUBLE_EQ(a.summary.total_explainability,
                   b.summary.total_explainability);
  for (size_t i = 0; i < a.summary.explanations.size(); ++i) {
    EXPECT_EQ(a.summary.explanations[i].grouping_pattern.ToString(),
              b.summary.explanations[i].grouping_pattern.ToString());
  }
}

TEST(CauSumXTest, PositiveOnlyMode) {
  SyntheticOptions opt;
  opt.num_rows = 1000;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.mine_negative = false;
  const auto result = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  for (const auto& e : result.summary.explanations) {
    EXPECT_TRUE(e.positive.has_value());
    EXPECT_FALSE(e.negative.has_value());
  }
}

TEST(CauSumXTest, TreatmentAllowlistHonored) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.treatment_attribute_allowlist = {"T1"};
  const auto result = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  for (const auto& e : result.summary.explanations) {
    if (e.positive) {
      for (const auto& pred : e.positive->pattern.predicates()) {
        EXPECT_EQ(pred.attribute, "T1");
      }
    }
  }
}

TEST(CauSumXTest, PhaseTimingsRecorded) {
  SyntheticOptions opt;
  opt.num_rows = 800;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const auto result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  EXPECT_EQ(result.timings.phases().size(), 3u);
  EXPECT_GE(result.timings.Get("grouping"), 0.0);
  EXPECT_GE(result.timings.Get("treatment"), 0.0);
  EXPECT_GE(result.timings.Get("selection"), 0.0);
}

TEST(CauSumXTest, EmptyViewHandled) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddNode("y");
  const auto result = RunCauSumX(t, q, dag, {});
  EXPECT_EQ(result.summary.num_groups, 0u);
  EXPECT_TRUE(result.summary.explanations.empty());
}

// Parameterized sweep over k: explainability is monotone non-decreasing
// in the budget (the Fig. 9(a) phenomenon).
class CauSumXVaryK : public ::testing::TestWithParam<size_t> {};

TEST_P(CauSumXVaryK, MoreBudgetNeverHurtsExplainability) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  static const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.theta = 0.3;
  config.solver = FinalStepSolver::kExact;  // deterministic comparison
  config.k = GetParam();
  const auto small = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.k = GetParam() + 1;
  const auto large = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  EXPECT_GE(large.summary.total_explainability + 1e-6,
            small.summary.total_explainability);
}

INSTANTIATE_TEST_SUITE_P(Budgets, CauSumXVaryK,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace causumx
