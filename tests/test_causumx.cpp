// End-to-end tests for Algorithm 1 (the CauSumX pipeline) against the
// synthetic ground truth and the framework's constraints.

#include <gtest/gtest.h>

#include "core/causumx.h"
#include "datagen/synthetic.h"
#include "util/bitset.h"

namespace causumx {
namespace {

CauSumXConfig SyntheticConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.75;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

TEST(CauSumXTest, SyntheticGroundTruthRecovered) {
  SyntheticOptions opt;
  opt.num_rows = 2000;
  opt.num_treatment_attrs = 4;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));

  ASSERT_FALSE(result.summary.explanations.empty());
  for (const auto& exp : result.summary.explanations) {
    // Positive treatments must set odd T's high or even T's low.
    ASSERT_TRUE(exp.positive.has_value());
    EXPECT_GT(exp.positive->effect.cate, 0);
    for (const auto& pred : exp.positive->pattern.predicates()) {
      const int t_index = std::stoi(pred.attribute.substr(1));
      const int64_t v = pred.value.AsInt();
      if (t_index % 2 == 1) {
        EXPECT_GE(v, 4) << pred.ToString();  // odd T: high value
      } else {
        EXPECT_LE(v, 2) << pred.ToString();  // even T: low value
      }
    }
    // Negative treatments: the reverse.
    ASSERT_TRUE(exp.negative.has_value());
    EXPECT_LT(exp.negative->effect.cate, 0);
    for (const auto& pred : exp.negative->pattern.predicates()) {
      const int t_index = std::stoi(pred.attribute.substr(1));
      const int64_t v = pred.value.AsInt();
      if (t_index % 2 == 1) {
        EXPECT_LE(v, 2) << pred.ToString();
      } else {
        EXPECT_GE(v, 4) << pred.ToString();
      }
    }
  }
}

TEST(CauSumXTest, ConstraintsRespected) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.k = 2;
  config.theta = 0.4;
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  EXPECT_LE(result.summary.explanations.size(), 2u);
  if (result.summary.coverage_satisfied) {
    EXPECT_GE(result.summary.CoverageFraction(), 0.4 - 1e-9);
  }
  // Incomparability: no two selected explanations share a coverage set.
  for (size_t i = 0; i < result.summary.explanations.size(); ++i) {
    for (size_t j = i + 1; j < result.summary.explanations.size(); ++j) {
      EXPECT_FALSE(result.summary.explanations[i].group_coverage ==
                   result.summary.explanations[j].group_coverage);
    }
  }
}

TEST(CauSumXTest, TotalExplainabilityIsSumOfWeights) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  double sum = 0;
  // causumx-lint: allow(fp-accumulation) serial test oracle, fixed order
  for (const auto& e : result.summary.explanations) sum += e.Weight();
  EXPECT_NEAR(result.summary.total_explainability, sum, 1e-9);
}

TEST(CauSumXTest, CoverageCountMatchesUnion) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  Bitset covered(result.summary.num_groups);
  for (const auto& e : result.summary.explanations) {
    covered |= e.group_coverage;
  }
  EXPECT_EQ(result.summary.covered_groups, covered.Count());
}

TEST(CauSumXTest, SolverVariantsAllProduceResults) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);

  config.solver = FinalStepSolver::kLpRounding;
  const auto lp = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.solver = FinalStepSolver::kGreedy;
  const auto greedy = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.solver = FinalStepSolver::kExact;
  const auto exact = RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  EXPECT_FALSE(lp.summary.explanations.empty());
  EXPECT_FALSE(greedy.summary.explanations.empty());
  EXPECT_FALSE(exact.summary.explanations.empty());
  // Exact dominates the rounded solution in explainability whenever both
  // satisfy the constraints.
  if (exact.summary.coverage_satisfied && lp.summary.coverage_satisfied) {
    EXPECT_GE(exact.summary.total_explainability + 1e-6,
              lp.summary.total_explainability);
  }
}

TEST(CauSumXTest, DeterministicAcrossRuns) {
  SyntheticOptions opt;
  opt.num_rows = 1000;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.num_threads = 2;
  const auto a = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  const auto b = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  ASSERT_EQ(a.summary.explanations.size(), b.summary.explanations.size());
  EXPECT_DOUBLE_EQ(a.summary.total_explainability,
                   b.summary.total_explainability);
  for (size_t i = 0; i < a.summary.explanations.size(); ++i) {
    EXPECT_EQ(a.summary.explanations[i].grouping_pattern.ToString(),
              b.summary.explanations[i].grouping_pattern.ToString());
  }
}

TEST(CauSumXTest, PositiveOnlyMode) {
  SyntheticOptions opt;
  opt.num_rows = 1000;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.mine_negative = false;
  const auto result = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  for (const auto& e : result.summary.explanations) {
    EXPECT_TRUE(e.positive.has_value());
    EXPECT_FALSE(e.negative.has_value());
  }
}

TEST(CauSumXTest, TreatmentAllowlistHonored) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.treatment_attribute_allowlist = {"T1"};
  const auto result = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  for (const auto& e : result.summary.explanations) {
    if (e.positive) {
      for (const auto& pred : e.positive->pattern.predicates()) {
        EXPECT_EQ(pred.attribute, "T1");
      }
    }
  }
}

TEST(CauSumXTest, PhaseTimingsRecorded) {
  SyntheticOptions opt;
  opt.num_rows = 800;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const auto result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  EXPECT_EQ(result.timings.phases().size(), 3u);
  EXPECT_GE(result.timings.Get("grouping"), 0.0);
  EXPECT_GE(result.timings.Get("treatment"), 0.0);
  EXPECT_GE(result.timings.Get("selection"), 0.0);
}

TEST(CauSumXTest, EmptyViewHandled) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddNode("y");
  const auto result = RunCauSumX(t, q, dag, {});
  EXPECT_EQ(result.summary.num_groups, 0u);
  EXPECT_TRUE(result.summary.explanations.empty());
}

// The engine caches are an optimization, not a semantics change: a run
// with the predicate-bitset cache + CATE memo enabled must produce
// bitwise-identical explanations to a cache-bypass run.
TEST(CauSumXTest, CachedAndBypassRunsAreBitIdentical) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.num_threads = 2;

  config.disable_eval_cache = false;
  const auto cached = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.disable_eval_cache = true;
  const auto bypass = RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  ASSERT_EQ(cached.summary.explanations.size(),
            bypass.summary.explanations.size());
  ASSERT_FALSE(cached.summary.explanations.empty());
  EXPECT_EQ(cached.summary.total_explainability,
            bypass.summary.total_explainability);
  EXPECT_EQ(cached.treatment_patterns_evaluated,
            bypass.treatment_patterns_evaluated);
  for (size_t i = 0; i < cached.summary.explanations.size(); ++i) {
    const Explanation& a = cached.summary.explanations[i];
    const Explanation& b = bypass.summary.explanations[i];
    EXPECT_EQ(a.grouping_pattern.ToString(), b.grouping_pattern.ToString());
    ASSERT_EQ(a.positive.has_value(), b.positive.has_value());
    if (a.positive) {
      EXPECT_EQ(a.positive->pattern.ToString(), b.positive->pattern.ToString());
      EXPECT_EQ(a.positive->effect.cate, b.positive->effect.cate);
      EXPECT_EQ(a.positive->effect.p_value, b.positive->effect.p_value);
    }
    ASSERT_EQ(a.negative.has_value(), b.negative.has_value());
    if (a.negative) {
      EXPECT_EQ(a.negative->pattern.ToString(), b.negative->pattern.ToString());
      EXPECT_EQ(a.negative->effect.cate, b.negative->effect.cate);
      EXPECT_EQ(a.negative->effect.p_value, b.negative->effect.p_value);
    }
  }
  // The cached run exercised the caches; the bypass run did not.
  EXPECT_GT(cached.cache_stats.eval.bitsets_materialized, 0u);
  EXPECT_GT(cached.cache_stats.estimator.memo_hits, 0u);
  EXPECT_EQ(bypass.cache_stats.eval.bitsets_materialized, 0u);
  EXPECT_EQ(bypass.cache_stats.estimator.memo_hits, 0u);
}

TEST(CauSumXTest, CacheStatsReported) {
  SyntheticOptions opt;
  opt.num_rows = 1000;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  const auto result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, SyntheticConfig(ds));
  const EngineCacheStats& stats = result.cache_stats;
  EXPECT_GT(stats.eval.predicates_interned, 0u);
  EXPECT_GT(stats.eval.bitsets_materialized, 0u);
  // Each atom's bitset is looked up far more often than it is built.
  EXPECT_GT(stats.eval.bitset_hits, stats.eval.bitsets_materialized);
  // With both signs mined, the negative walk's level-1 estimates are all
  // memo hits from the positive walk.
  EXPECT_GT(stats.estimator.memo_hits, 0u);
  EXPECT_GT(stats.estimator.memo_misses, 0u);
}

// Regression test for the config footgun: mutating apriori_support after
// construction must reach the grouping miner (the ctor also copies it
// into grouping.apriori.min_support; RunCauSumX re-propagates).
TEST(CauSumXTest, AprioriSupportMutationPropagates) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);

  config.apriori_support = 0.001;  // mutate after construction
  const auto loose = MineExplanationCandidates(ds.table, ds.default_query,
                                               ds.dag, config);
  config.apriori_support = 0.99;
  const auto strict = MineExplanationCandidates(ds.table, ds.default_query,
                                                ds.dag, config);
  ASSERT_GT(loose.num_grouping_candidates, 0u);
  // At 99% support, only near-universal patterns survive; if the mutated
  // value were ignored (stale ctor copy = 0.1), both runs would mine the
  // same candidate set.
  EXPECT_LT(strict.num_grouping_candidates, loose.num_grouping_candidates);
}

// Parameterized sweep over k: explainability is monotone non-decreasing
// in the budget (the Fig. 9(a) phenomenon).
class CauSumXVaryK : public ::testing::TestWithParam<size_t> {};

TEST_P(CauSumXVaryK, MoreBudgetNeverHurtsExplainability) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  static const GeneratedDataset ds = MakeSyntheticDataset(opt);
  CauSumXConfig config = SyntheticConfig(ds);
  config.theta = 0.3;
  config.solver = FinalStepSolver::kExact;  // deterministic comparison
  config.k = GetParam();
  const auto small = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  config.k = GetParam() + 1;
  const auto large = RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  EXPECT_GE(large.summary.total_explainability + 1e-6,
            small.summary.total_explainability);
}

INSTANTIATE_TEST_SUITE_P(Budgets, CauSumXVaryK,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace causumx
