// Unit tests for grouping-pattern mining (Section 5.1): coverage per
// Definition 4.4, redundancy removal, and per-group fallbacks.

#include <gtest/gtest.h>

#include <map>

#include "mining/grouping_miner.h"

namespace causumx {
namespace {

// 3 countries with FD country -> continent/gdp. US+CA share continent NA;
// US+CA+DE share gdp High.
Table MakeTable() {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("continent", ColumnType::kCategorical);
  t.AddColumn("gdp", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  auto add = [&t](const char* c, const char* cont, const char* g, double s,
                  int copies) {
    for (int i = 0; i < copies; ++i) {
      t.AddRow({Value(c), Value(cont), Value(g), Value(s)});
    }
  };
  add("US", "NA", "High", 100, 4);
  add("CA", "NA", "High", 80, 3);
  add("DE", "EU", "High", 70, 3);
  return t;
}

AggregateView MakeView(const Table& t) {
  GroupByAvgQuery q;
  q.group_by = {"country"};
  q.avg_attribute = "salary";
  return AggregateView::Evaluate(t, q);
}

TEST(GroupingMinerTest, CoverageFollowsDefinition) {
  const Table t = MakeTable();
  const AggregateView view = MakeView(t);
  GroupingMinerOptions opt;
  opt.apriori.min_support = 0.1;
  opt.include_per_group_patterns = false;
  const auto patterns =
      MineGroupingPatterns(t, view, {"continent", "gdp"}, opt);

  std::map<std::string, const GroupingPattern*> by_text;
  for (const auto& p : patterns) by_text[p.pattern.ToString()] = &p;

  ASSERT_TRUE(by_text.count("continent = NA"));
  EXPECT_EQ(by_text.at("continent = NA")->NumGroupsCovered(), 2u);
  ASSERT_TRUE(by_text.count("gdp = High"));
  EXPECT_EQ(by_text.at("gdp = High")->NumGroupsCovered(), 3u);
}

TEST(GroupingMinerTest, RedundantCoverageDeduplicatedToShortest) {
  const Table t = MakeTable();
  const AggregateView view = MakeView(t);
  GroupingMinerOptions opt;
  opt.apriori.min_support = 0.1;
  opt.apriori.max_length = 2;
  opt.include_per_group_patterns = false;
  const auto patterns =
      MineGroupingPatterns(t, view, {"continent", "gdp"}, opt);
  // "continent = NA AND gdp = High" covers the same groups as
  // "continent = NA" — only the shorter survives; likewise "gdp = High"
  // wins over "continent = EU AND gdp = High"? (different coverage, both
  // kept). Check: no two patterns share a coverage set.
  std::map<uint64_t, std::string> seen;
  for (const auto& p : patterns) {
    const uint64_t h = p.group_coverage.Hash();
    ASSERT_FALSE(seen.count(h))
        << p.pattern.ToString() << " duplicates " << seen[h];
    seen[h] = p.pattern.ToString();
  }
  for (const auto& p : patterns) {
    EXPECT_LE(p.pattern.Size(), 1u) << p.pattern.ToString()
                                    << " should have been deduped";
  }
}

TEST(GroupingMinerTest, PerGroupFallbacksCoverSingletons) {
  const Table t = MakeTable();
  const AggregateView view = MakeView(t);
  GroupingMinerOptions opt;
  opt.apriori.min_support = 0.9;  // starve Apriori
  opt.include_per_group_patterns = true;
  const auto patterns = MineGroupingPatterns(t, view, {}, opt);
  ASSERT_EQ(patterns.size(), 3u);
  size_t singletons = 0;
  for (const auto& p : patterns) {
    if (p.NumGroupsCovered() == 1) ++singletons;
  }
  EXPECT_EQ(singletons, 3u);
}

TEST(GroupingMinerTest, RowSupportMatchesPattern) {
  const Table t = MakeTable();
  const AggregateView view = MakeView(t);
  GroupingMinerOptions opt;
  opt.include_per_group_patterns = true;
  const auto patterns =
      MineGroupingPatterns(t, view, {"continent", "gdp"}, opt);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.rows.Count(), p.support);
    for (size_t r = 0; r < t.NumRows(); ++r) {
      EXPECT_EQ(p.rows.Test(r), p.pattern.Matches(t, r));
    }
  }
}

TEST(GroupingMinerTest, UnioningAllPatternsCoversAllGroups) {
  const Table t = MakeTable();
  const AggregateView view = MakeView(t);
  GroupingMinerOptions opt;
  const auto patterns =
      MineGroupingPatterns(t, view, {"continent", "gdp"}, opt);
  Bitset all(view.NumGroups());
  for (const auto& p : patterns) all |= p.group_coverage;
  EXPECT_EQ(all.Count(), view.NumGroups());
}

TEST(GroupingMinerTest, EmptyViewNoPatterns) {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  const AggregateView view = MakeView(t);
  const auto patterns = MineGroupingPatterns(t, view, {}, {});
  EXPECT_TRUE(patterns.empty());
}

}  // namespace
}  // namespace causumx
