// Cross-module integration tests: CSV -> CauSumX, discovery -> CauSumX,
// the NP-hardness reduction gadget (Fig. 17 / Proposition 4.1), and the
// realistic-dataset end-to-end smoke paths that back the case studies.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/brute_force.h"
#include "causal/discovery.h"
#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/german.h"
#include "datagen/stackoverflow.h"
#include "dataset/csv.h"
#include "lp/rounding.h"
#include "util/rng.h"

namespace causumx {
namespace {

TEST(IntegrationTest, CsvToExplanationPipeline) {
  // Ship a small dataset through the CSV reader into the full pipeline.
  std::ostringstream csv;
  csv << "grp,cat,flag,score\n";
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const bool g = rng.NextBool(0.5);
    const bool flag = rng.NextBool(0.5);
    const double y = (flag ? 4.0 : 0.0) + rng.NextGaussian(0, 0.5);
    csv << (g ? "A" : "B") << "," << (g ? "east" : "west") << ","
        << (flag ? "on" : "off") << "," << y << "\n";
  }
  std::istringstream in(csv.str());
  const Table t = ReadCsv(in);
  ASSERT_EQ(t.NumRows(), 2000u);

  GroupByAvgQuery q;
  q.group_by = {"grp"};
  q.avg_attribute = "score";
  CausalDag dag;
  dag.AddEdge("flag", "score");

  CauSumXConfig config;
  config.k = 2;
  config.theta = 1.0;
  const CauSumXResult result = RunCauSumX(t, q, dag, config);
  ASSERT_FALSE(result.summary.explanations.empty());
  // FD grp -> cat must be discovered and used.
  bool cat_grouping = false;
  for (const auto& a : result.partition.grouping_attributes) {
    if (a == "cat") cat_grouping = true;
  }
  EXPECT_TRUE(cat_grouping);
  // Effect recovered ~ 4.
  const auto& top = result.summary.explanations[0];
  ASSERT_TRUE(top.positive.has_value());
  EXPECT_NEAR(top.positive->effect.cate, 4.0, 0.4);
}

TEST(IntegrationTest, DiscoveredDagFeedsPipeline) {
  GermanOptions opt;
  opt.num_rows = 800;
  const GeneratedDataset ds = MakeGermanDataset(opt);
  DiscoveryOptions dopt;
  dopt.max_cond_size = 1;
  const CausalDag pc =
      DiscoverDag(ds.table, DiscoveryAlgorithm::kPc, "RiskScore", dopt);
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.3;
  config.estimator.min_group_size = 5;
  config.treatment.alpha = 0.1;
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, pc, config);
  // A discovered DAG must still produce a usable (non-crashing, rendered)
  // summary; exact contents depend on the discovery output.
  const std::string text = RenderSummary(result.summary, ds.style);
  EXPECT_FALSE(text.empty());
}

// The Proposition 4.1 reduction: a set-cover instance becomes a
// selection-feasibility question. Sets {1,2,3}, {3,5}, {4,5} over
// universe {1..5}; k=2 admits the cover {S1, S3}; k=1 does not.
TEST(IntegrationTest, NpHardnessGadgetFeasibility) {
  SelectionProblem p;
  p.num_groups = 5;
  p.theta = 1.0;
  auto cover = [](std::initializer_list<size_t> bits) {
    Bitset b(5);
    for (size_t i : bits) b.Set(i);
    return b;
  };
  p.candidates = {
      {0.0, cover({0, 1, 2})},  // S1
      {0.0, cover({2, 4})},     // S2
      {0.0, cover({3, 4})},     // S3
  };
  p.k = 2;
  EXPECT_TRUE(SolveExact(p).feasible);  // S1 + S3 covers everything
  p.k = 1;
  EXPECT_FALSE(SolveExact(p).feasible);
}

TEST(IntegrationTest, SensitiveAttributeProtocol) {
  StackOverflowOptions opt;
  opt.num_rows = 8000;
  const GeneratedDataset ds = MakeStackOverflowDataset(opt);
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.8;
  config.treatment_attribute_allowlist = {"Gender", "Ethnicity", "Age"};
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  for (const auto& exp : result.summary.explanations) {
    for (const auto* side : {&exp.positive, &exp.negative}) {
      if (!side->has_value()) continue;
      for (const auto& pred : (*side)->pattern.predicates()) {
        EXPECT_TRUE(pred.attribute == "Gender" ||
                    pred.attribute == "Ethnicity" || pred.attribute == "Age")
            << pred.ToString();
      }
    }
  }
}

TEST(IntegrationTest, SoCaseStudyShape) {
  StackOverflowOptions opt;
  opt.num_rows = 8000;
  const GeneratedDataset ds = MakeStackOverflowDataset(opt);
  CauSumXConfig config;
  config.k = 3;
  config.theta = 1.0;
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  EXPECT_TRUE(result.summary.coverage_satisfied);
  EXPECT_LE(result.summary.explanations.size(), 3u);
  EXPECT_GT(result.summary.total_explainability, 0.0);
  // Every explanation must carry a significant effect on Salary.
  for (const auto& exp : result.summary.explanations) {
    if (exp.positive) {
      EXPECT_LE(exp.positive->effect.p_value, config.treatment.alpha);
      EXPECT_GT(exp.positive->effect.cate, 0);
    }
    if (exp.negative) {
      EXPECT_LT(exp.negative->effect.cate, 0);
    }
  }
}

TEST(IntegrationTest, BruteForceAgreesWithCauSumXOnTinyWorld) {
  // A world small enough that CauSumX's pruning loses nothing: both
  // should find the same top treatment for the single grouping pattern.
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("reg", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(5);
  for (int i = 0; i < 1200; ++i) {
    const bool g = rng.NextBool(0.5);
    const bool x = rng.NextBool(0.5);
    t.AddRow({Value(g ? "a" : "b"), Value(g ? "r1" : "r2"),
              Value(x ? "1" : "0"),
              Value((x ? 3.0 : 0.0) + rng.NextGaussian(0, 0.4))});
  }
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddEdge("x", "y");

  CauSumXConfig cx;
  cx.k = 2;
  cx.theta = 1.0;
  cx.estimator.min_group_size = 5;
  const CauSumXResult ours = RunCauSumX(t, q, dag, cx);

  BruteForceConfig bf;
  bf.k = 2;
  bf.theta = 1.0;
  bf.estimator.min_group_size = 5;
  const BruteForceResult exact = RunBruteForce(t, q, dag, bf);

  ASSERT_FALSE(ours.summary.explanations.empty());
  ASSERT_FALSE(exact.summary.explanations.empty());
  EXPECT_NEAR(ours.summary.total_explainability,
              exact.summary.total_explainability,
              0.25 * exact.summary.total_explainability + 1e-9);
}

}  // namespace
}  // namespace causumx
