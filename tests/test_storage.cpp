// Tests for the storage layer: byte codec, snapshot container, columnar
// table format, segment serialization, durable-write primitives — and
// the service-level warm-restart path, including the corruption suite
// (truncation, bit-flips, version skew, stale keys, killed writers must
// all be detected and fall back to a cold rebuild with bit-identical
// results).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "dataset/csv.h"
#include "dataset/table_io.h"
#include "server/rest_api.h"
#include "service/explanation_service.h"
#include "storage/bytes.h"
#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/storage_error.h"
#include "util/compressed_bitset.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace causumx {
namespace {

// A scratch directory removed (with its files) on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/causumx_storage_XXXXXX";
    path = ::mkdtemp(buf);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& f : ListDirFiles(path)) {
      ::unlink((path + "/" + f).c_str());
    }
    ::rmdir(path.c_str());
  }
};

// ---- byte codec ------------------------------------------------------------

TEST(BytesTest, ScalarsRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(~0ull);
  w.PutVarintSigned(-1);
  w.PutVarintSigned(INT64_MIN);
  w.PutDouble(-0.0);
  w.PutString("hello\0world");  // embedded NUL truncates the literal; fine
  const std::string bytes = w.TakeBytes();

  ByteReader r(bytes);
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetVarint(), 0u);
  EXPECT_EQ(r.GetVarint(), 127u);
  EXPECT_EQ(r.GetVarint(), 128u);
  EXPECT_EQ(r.GetVarint(), ~0ull);
  EXPECT_EQ(r.GetVarintSigned(), -1);
  EXPECT_EQ(r.GetVarintSigned(), INT64_MIN);
  const double neg_zero = r.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncationThrowsCorrupt) {
  ByteWriter w;
  w.PutU64(42);
  w.PutString("payload");
  const std::string bytes = w.TakeBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    try {
      r.GetU64();
      const std::string s = r.GetString();
      FAIL() << "prefix of length " << len << " parsed as a whole record";
    } catch (const StorageError& e) {
      EXPECT_EQ(e.kind(), StorageErrorKind::kCorrupt);
    }
  }
}

TEST(BytesTest, OverlongVarintRejected) {
  std::string bytes(11, '\x80');  // 11 continuation bytes: > 10-byte cap
  ByteReader r(bytes);
  EXPECT_THROW(r.GetVarint(), StorageError);
}

TEST(Crc32Test, KnownVector) {
  // The standard CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

// ---- file primitives -------------------------------------------------------

TEST(FileIoTest, FileStemRoundTrips) {
  const std::string names[] = {"simple", "with space", "a/b\\c", "100%",
                               "mixed_OK-1.2", "\x01\xFF"};
  for (const std::string& name : names) {
    const std::string stem = EncodeFileStem(name);
    EXPECT_EQ(stem.find('/'), std::string::npos) << name;
    EXPECT_EQ(DecodeFileStem(stem), name);
  }
  EXPECT_THROW(DecodeFileStem("trailing%"), StorageError);
  EXPECT_THROW(DecodeFileStem("bad%ZZescape"), StorageError);
}

TEST(FileIoTest, DurableWriteRoundTripsAndLeavesNoTemp) {
  TempDir dir;
  const std::string path = dir.path + "/file.bin";
  std::string payload(100000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31 + 7);
  }
  WriteFileDurable(path, payload);
  EXPECT_EQ(ReadFileBytes(path), payload);
  EXPECT_FALSE(FileExists(path + ".tmp"));

  // Overwrite: the new bytes fully replace the old.
  WriteFileDurable(path, "second");
  EXPECT_EQ(ReadFileBytes(path), "second");
}

TEST(FileIoTest, ReadMissingFileThrowsIo) {
  try {
    ReadFileBytes("/nonexistent/causumx/file");
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kIo);
  }
}

// ---- snapshot container ----------------------------------------------------

std::string MakeBigPayload(size_t n) {
  std::string payload(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>((i * 131) ^ (i >> 8));
  }
  return payload;
}

TEST(SnapshotTest, ContainerRoundTrips) {
  SnapshotWriter w("test-kind", 3, "key|v1|abc");
  w.AddSection("alpha", "first payload");
  w.AddSection("beta", "");  // empty sections are legal
  w.AddSection("gamma", MakeBigPayload(3 * kStoragePageSize + 17));
  const std::string bytes = w.Serialize();

  const SnapshotReader r = SnapshotReader::Parse(bytes, "test-kind", 3);
  EXPECT_EQ(r.key(), "key|v1|abc");
  ASSERT_EQ(r.SectionNames().size(), 3u);
  EXPECT_EQ(r.SectionNames()[0], "alpha");
  EXPECT_EQ(r.SectionNames()[2], "gamma");
  EXPECT_EQ(r.Section("alpha"), "first payload");
  EXPECT_EQ(r.Section("beta"), "");
  EXPECT_EQ(r.Section("gamma"), MakeBigPayload(3 * kStoragePageSize + 17));
  EXPECT_TRUE(r.HasSection("beta"));
  EXPECT_FALSE(r.HasSection("delta"));
  EXPECT_THROW(r.Section("delta"), StorageError);
}

TEST(SnapshotTest, KindAndVersionSkewAreStale) {
  SnapshotWriter w("kind-a", 1, "k");
  w.AddSection("s", "p");
  const std::string bytes = w.Serialize();
  try {
    SnapshotReader::Parse(bytes, "kind-b", 1);
    FAIL() << "wrong kind accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kStale);
  }
  try {
    SnapshotReader::Parse(bytes, "kind-a", 2);
    FAIL() << "wrong version accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kStale);
  }
}

TEST(SnapshotTest, EveryTruncationIsDetected) {
  SnapshotWriter w("test-kind", 1, "key");
  w.AddSection("a", "some section payload data");
  w.AddSection("b", MakeBigPayload(300));
  const std::string bytes = w.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        SnapshotReader::Parse(bytes.substr(0, len), "test-kind", 1),
        StorageError)
        << "prefix of length " << len << " of " << bytes.size()
        << " parsed cleanly";
  }
}

TEST(SnapshotTest, EveryBitFlipIsDetected) {
  SnapshotWriter w("test-kind", 1, "key");
  w.AddSection("a", "some section payload data");
  w.AddSection("b", MakeBigPayload(200));
  const std::string bytes = w.Serialize();
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string damaged = bytes;
      damaged[i] = static_cast<char>(damaged[i] ^ mask);
      EXPECT_THROW(SnapshotReader::Parse(damaged, "test-kind", 1),
                   StorageError)
          << "flip of bit mask " << int{mask} << " at byte " << i
          << " went unnoticed";
    }
  }
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  SnapshotWriter w("test-kind", 1, "key");
  w.AddSection("a", "p");
  std::string bytes = w.Serialize();
  bytes += "extra";
  EXPECT_THROW(SnapshotReader::Parse(bytes, "test-kind", 1), StorageError);
}

// ---- columnar table format -------------------------------------------------

// Mixed-type table exercising nulls, negatives, wide ranges, shared and
// per-row dictionary codes, and non-block-aligned row counts.
Table MakeMixedTable(size_t rows) {
  Table t;
  t.AddColumn("id", ColumnType::kInt64);
  t.AddColumn("score", ColumnType::kDouble);
  t.AddColumn("city", ColumnType::kCategorical);
  const char* cities[] = {"tokyo", "lima", "oslo", "cairo", "quito"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row(3);
    if (i % 7 == 3) {
      row[0] = Value();  // null int
    } else {
      row[0] = Value(static_cast<int64_t>(i) * 1000003 - 5000000);
    }
    if (i % 11 == 5) {
      row[1] = Value();  // null double
    } else {
      row[1] = Value(static_cast<double>(i) * 0.37 - 21.5);
    }
    if (i % 13 == 6) {
      row[2] = Value();  // null categorical
    } else {
      row[2] = Value(std::string(cities[(i * i) % 5]));
    }
    t.AddRow(row);
  }
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.column(c).name(), b.column(c).name());
    ASSERT_EQ(a.column(c).type(), b.column(c).type());
    for (size_t r = 0; r < a.NumRows(); ++r) {
      ASSERT_EQ(a.column(c).IsNull(r), b.column(c).IsNull(r))
          << "null mismatch at row " << r << " col " << c;
      if (!a.column(c).IsNull(r)) {
        ASSERT_EQ(a.column(c).GetValue(r), b.column(c).GetValue(r))
            << "cell mismatch at row " << r << " col " << c;
      }
    }
  }
  EXPECT_EQ(TableContentHash(a), TableContentHash(b));
}

TEST(TableIoTest, MixedTableRoundTrips) {
  for (size_t rows : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                      size_t{65}, size_t{130}, size_t{1000}}) {
    const Table t = MakeMixedTable(rows);
    const Table back = DeserializeTable(SerializeTable(t));
    ExpectTablesEqual(t, back);
  }
}

TEST(TableIoTest, FileRoundTripViaDurableWrite) {
  TempDir dir;
  const std::string path = dir.path + "/table.ctbl";
  const Table t = MakeMixedTable(200);
  WriteTableFile(t, path);
  ExpectTablesEqual(t, ReadTableFile(path));
}

TEST(TableIoTest, ContentHashIsOrderAndValueSensitive) {
  Table a;
  a.AddColumn("x", ColumnType::kInt64);
  a.AddRow({Value(int64_t{1})});
  a.AddRow({Value(int64_t{2})});
  Table b;
  b.AddColumn("x", ColumnType::kInt64);
  b.AddRow({Value(int64_t{2})});
  b.AddRow({Value(int64_t{1})});
  EXPECT_NE(TableContentHash(a), TableContentHash(b));
  Table c;
  c.AddColumn("y", ColumnType::kInt64);  // same cells, renamed column
  c.AddRow({Value(int64_t{1})});
  c.AddRow({Value(int64_t{2})});
  EXPECT_NE(TableContentHash(a), TableContentHash(c));
}

TEST(TableIoTest, SplicedKeyRejected) {
  // Re-wrap the real sections under a key claiming a different content
  // hash: the reader must notice the table does not match its key.
  const Table t = MakeMixedTable(50);
  const std::string bytes = SerializeTable(t);
  const SnapshotReader real = SnapshotReader::Parse(bytes, "causumx-table", 1);
  SnapshotWriter forged("causumx-table", 1,
                        "h0000000000000000" + real.key().substr(17));
  for (const std::string& name : real.SectionNames()) {
    forged.AddSection(name, real.Section(name));
  }
  try {
    DeserializeTable(forged.Serialize());
    FAIL() << "forged key accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kCorrupt);
  }
}

TEST(TableIoTest, TruncationsAndBitFlipsRejected) {
  const Table t = MakeMixedTable(80);
  const std::string bytes = SerializeTable(t);
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_THROW(DeserializeTable(bytes.substr(0, len)), StorageError);
  }
  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    EXPECT_THROW(DeserializeTable(damaged), StorageError)
        << "flip at byte " << i;
  }
}

// ---- segment serialization -------------------------------------------------

Bitset MakePatternedBitset(size_t size, int pattern) {
  Bitset bits(size);
  for (size_t i = 0; i < size; ++i) {
    bool set = false;
    switch (pattern) {
      case 0: set = false; break;                    // empty
      case 1: set = true; break;                     // full
      case 2: set = (i % 97) == 0; break;            // sparse -> array
      case 3: set = (i / 500) % 2 == 0; break;       // clustered -> runs
      case 4: set = ((i * 2654435761u) >> 13) & 1; break;  // dense mix
    }
    if (set) bits.Set(i);
  }
  return bits;
}

TEST(SegmentSerdeTest, AllRepresentationsRoundTrip) {
  for (size_t size : {size_t{0}, size_t{1}, size_t{64}, size_t{65536},
                      size_t{65537}, size_t{200000}}) {
    for (int pattern = 0; pattern < 5; ++pattern) {
      const Bitset bits = MakePatternedBitset(size, pattern);
      for (SegmentCompression mode :
           {SegmentCompression::kNever, SegmentCompression::kAlways,
            SegmentCompression::kAuto}) {
        const SegmentBits seg = SegmentBits::Choose(bits, mode);
        std::string bytes;
        seg.Serialize(&bytes);
        size_t pos = 0;
        const SegmentBits back = SegmentBits::Deserialize(bytes, &pos);
        EXPECT_EQ(pos, bytes.size());
        // Same representation, same accounting, same bits.
        EXPECT_EQ(back.compressed(), seg.compressed());
        EXPECT_EQ(back.bytes(), seg.bytes());
        EXPECT_EQ(back.size(), bits.size());
        EXPECT_EQ(back.Count(), bits.Count());
        EXPECT_TRUE(back.Materialize() == bits);
      }
    }
  }
}

TEST(SegmentSerdeTest, MalformedBytesRejected) {
  const Bitset bits = MakePatternedBitset(70000, 4);
  const SegmentBits seg =
      SegmentBits::Choose(bits, SegmentCompression::kAlways);
  std::string bytes;
  seg.Serialize(&bytes);
  // Truncations: every prefix must throw, not crash or return garbage.
  for (size_t len = 0; len < bytes.size(); len += 11) {
    size_t pos = 0;
    EXPECT_THROW(SegmentBits::Deserialize(bytes.substr(0, len), &pos),
                 std::runtime_error);
  }
  // Unknown representation tag.
  std::string bad = bytes;
  bad[0] = 7;
  size_t pos = 0;
  EXPECT_THROW(SegmentBits::Deserialize(bad, &pos), std::runtime_error);
}

// ---- CSV stream-failure regression (satellites 1 + 2) ----------------------

// A streambuf that serves `data` and then fails the stream (underflow
// throws, which istream converts to badbit) — simulating a disk error
// mid-read rather than a clean EOF.
class FailingReadBuf : public std::streambuf {
 public:
  explicit FailingReadBuf(std::string data) : data_(std::move(data)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 protected:
  int_type underflow() override {
    throw std::runtime_error("simulated device failure");
  }

 private:
  std::string data_;
};

// A streambuf that accepts nothing: every overflow fails, so the first
// buffered flush sets badbit on the ostream — simulating a full disk.
class FailingWriteBuf : public std::streambuf {
 protected:
  int_type overflow(int_type) override { return traits_type::eof(); }
};

TEST(CsvStreamFailureTest, ReadCsvDistinguishesFailureFromEof) {
  FailingReadBuf buf("a,b\n1,x\n2,y\n");  // fails after the buffered rows
  std::istream in(&buf);
  try {
    ReadCsv(in);
    FAIL() << "mid-stream failure read as clean EOF";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kIo);
  }
}

TEST(CsvStreamFailureTest, ReadCsvDeltaDistinguishesFailureFromEof) {
  Table schema;
  schema.AddColumn("a", ColumnType::kInt64);
  schema.AddColumn("b", ColumnType::kCategorical);
  FailingReadBuf buf("a,b\n7,z\n");
  std::istream in(&buf);
  try {
    ReadCsvDelta(schema, in);
    FAIL() << "mid-stream failure read as clean EOF";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kIo);
  }
}

TEST(CsvStreamFailureTest, CleanEofStillParses) {
  std::istringstream in("a,b\n1,x\n2,y\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(CsvStreamFailureTest, WriteCsvReportsStreamFailure) {
  Table t;
  t.AddColumn("a", ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) t.AddRow({Value(int64_t{i})});
  FailingWriteBuf buf;
  std::ostream out(&buf);
  try {
    WriteCsv(t, out);
    FAIL() << "write failure went unreported";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kIo);
  }
}

// ---- JSON non-finite doubles (satellite 3) ---------------------------------

TEST(JsonNonFiniteTest, NumberTokenNullsNonFinite) {
  EXPECT_EQ(JsonNumberToken(1.5, 6), FormatDouble(1.5, 6));
  EXPECT_EQ(JsonNumberToken(std::nan(""), 6), "null");
  EXPECT_EQ(JsonNumberToken(INFINITY, 8), "null");
  EXPECT_EQ(JsonNumberToken(-INFINITY, 8), "null");
}

TEST(JsonNonFiniteTest, EffectWithNonFiniteFieldsIsValidJson) {
  EffectEstimate e;
  e.valid = false;
  e.cate = std::nan("");
  e.std_error = INFINITY;
  e.p_value = -INFINITY;
  const std::string json = EffectToJson(e);
  // A bare nan/inf token would make this throw.
  const JsonValue parsed = JsonValue::Parse(json);
  EXPECT_TRUE(parsed.Find("cate")->is_null());
  EXPECT_TRUE(parsed.Find("std_error")->is_null());
  EXPECT_TRUE(parsed.Find("p_value")->is_null());
  EXPECT_TRUE(parsed.Find("ci95")->AsArray()[0].is_null());
}

TEST(JsonNonFiniteTest, PredicateWithNonFiniteValueIsValidJson) {
  const SimplePredicate pred("x", CompareOp::kGt, Value(std::nan("")));
  const JsonValue parsed = JsonValue::Parse(PredicateToJson(pred));
  EXPECT_TRUE(parsed.Find("value")->is_null());
}

// ---- engine cache export/import --------------------------------------------

TEST(EngineCacheSerdeTest, RestoredEngineEvaluatesIdentically) {
  const auto table =
      std::make_shared<const Table>(MakeMixedTable(500));
  EvalEngineOptions opts;
  opts.num_shards = 4;
  EvalEngine a(table, opts);
  const Pattern pattern({
      SimplePredicate("city", CompareOp::kEq, Value(std::string("tokyo"))),
      SimplePredicate("id", CompareOp::kGt, Value(int64_t{0})),
  });
  const Bitset expected = a.Evaluate(pattern);
  ASSERT_GT(a.NumInterned(), 0u);

  const std::string state = a.ExportCacheState();
  EvalEngine b(table, opts);
  const size_t restored = b.ImportCacheState(state);
  EXPECT_GT(restored, 0u);
  EXPECT_EQ(b.NumInterned(), a.NumInterned());
  EXPECT_EQ(b.CacheBytes(), a.CacheBytes());
  EXPECT_TRUE(b.Evaluate(pattern) == expected);

  // Import into a non-fresh engine is a programming error.
  EXPECT_THROW(b.ImportCacheState(state), std::logic_error);

  // Import under a different configuration is stale, not silently wrong.
  EvalEngineOptions other = opts;
  other.num_shards = 2;
  EvalEngine c(table, other);
  try {
    c.ImportCacheState(state);
    FAIL() << "config mismatch accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kStale);
  }
}

// ---- service warm restarts -------------------------------------------------

GeneratedDataset MakeData() {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  opt.num_treatment_attrs = 3;
  return MakeSyntheticDataset(opt);
}

CauSumXConfig MakeConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

ServiceOptions PersistentOptions(const std::string& data_dir) {
  ServiceOptions o;
  o.data_dir = data_dir;
  return o;
}

// Runs one query on a fresh persistent service registered with
// deterministic synthetic data; returns the summary JSON.
std::string RunOnFreshService(const std::string& data_dir,
                              ServiceStats* stats_out = nullptr) {
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  ExplanationService service(PersistentOptions(data_dir));
  service.RegisterTable("t", std::move(ds.table));
  const CauSumXResult r = service.Explain("t", ds.default_query, ds.dag,
                                          config);
  if (stats_out != nullptr) *stats_out = service.Stats();
  return SummaryToJson(r.summary);
}

TEST(ServicePersistenceTest, WarmRestartIsBitIdenticalAndServedFromMemo) {
  TempDir dir;
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);

  std::string cold_json;
  {
    ExplanationService service(PersistentOptions(dir.path));
    service.RegisterTable("t", std::move(ds.table));
    const CauSumXResult cold =
        service.Explain("t", ds.default_query, ds.dag, config);
    cold_json = SummaryToJson(cold.summary);
    EXPECT_EQ(service.Stats().snapshots_restored, 0u);
    service.SaveSnapshot("t");
    EXPECT_EQ(service.Stats().snapshots_written, 1u);
    EXPECT_GT(service.Stats().last_snapshot_unix_ms, 0u);
  }

  // Restart: same data content re-registered; the snapshot key matches,
  // so the caches restore and the first query is warm and bit-identical.
  GeneratedDataset ds2 = MakeData();
  ExplanationService restarted(PersistentOptions(dir.path));
  restarted.RegisterTable("t", std::move(ds2.table));
  EXPECT_EQ(restarted.Stats().snapshots_restored, 1u);
  EXPECT_EQ(restarted.Stats().snapshots_rejected, 0u);
  const CauSumXResult warm =
      restarted.Explain("t", ds.default_query, ds.dag, config);
  EXPECT_EQ(SummaryToJson(warm.summary), cold_json);
  EXPECT_GT(warm.cache_stats.estimator.memo_hits, 0u);
  EXPECT_EQ(warm.cache_stats.estimator.memo_misses, 0u);
}

TEST(ServicePersistenceTest, SnapshotBytesAreDeterministic) {
  TempDir dir;
  GeneratedDataset ds = MakeData();
  ExplanationService service(PersistentOptions(dir.path));
  service.RegisterTable("t", std::move(ds.table));
  service.Explain("t", ds.default_query, ds.dag, MakeConfig(ds));
  service.SaveSnapshot("t");
  const std::string first = ReadFileBytes(service.SnapshotPath("t"));
  service.SaveSnapshot("t");
  const std::string second = ReadFileBytes(service.SnapshotPath("t"));
  EXPECT_EQ(first, second);
}

TEST(ServicePersistenceTest, ColdStartFromSnapshotAlone) {
  TempDir dir;
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  std::string cold_json;
  {
    ExplanationService service(PersistentOptions(dir.path));
    service.RegisterTable("t", std::move(ds.table));
    cold_json = SummaryToJson(
        service.Explain("t", ds.default_query, ds.dag, config).summary);
    service.SaveSnapshot("t");
  }

  // No CSV, no RegisterTable: the snapshot alone rebuilds the table and
  // its warm caches.
  ExplanationService restored(PersistentOptions(dir.path));
  EXPECT_EQ(restored.RestoreAll(), 1u);
  ASSERT_TRUE(restored.HasTable("t"));
  const CauSumXResult warm =
      restored.Explain("t", ds.default_query, ds.dag, config);
  EXPECT_EQ(SummaryToJson(warm.summary), cold_json);
  EXPECT_GT(warm.cache_stats.estimator.memo_hits, 0u);
}

// Writes a valid snapshot, damages it with `mutate`, then asserts a
// restart detects the damage, falls back to a cold rebuild, and still
// answers bit-identically.
void ExpectDamageDetectedAndColdFallback(
    const std::function<void(const std::string& path)>& mutate) {
  TempDir dir;
  ServiceStats cold_stats;
  const std::string cold_json = RunOnFreshService(dir.path, &cold_stats);
  {
    GeneratedDataset ds = MakeData();
    ExplanationService service(PersistentOptions(dir.path));
    service.RegisterTable("t", std::move(ds.table));
    service.Explain("t", ds.default_query, ds.dag,
                    MakeConfig(MakeData()));
    service.SaveSnapshot("t");
  }
  ExplanationService victim(PersistentOptions(dir.path));
  mutate(victim.SnapshotPath("t"));

  GeneratedDataset ds = MakeData();
  victim.RegisterTable("t", std::move(ds.table));
  EXPECT_EQ(victim.Stats().snapshots_restored, 0u);
  EXPECT_GE(victim.Stats().snapshots_rejected, 1u);
  const CauSumXResult r =
      victim.Explain("t", ds.default_query, ds.dag, MakeConfig(MakeData()));
  EXPECT_EQ(SummaryToJson(r.summary), cold_json);
}

TEST(ServicePersistenceTest, TruncatedSnapshotFallsBackCold) {
  ExpectDamageDetectedAndColdFallback([](const std::string& path) {
    const std::string bytes = ReadFileBytes(path);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  });
}

TEST(ServicePersistenceTest, BitFlippedSnapshotFallsBackCold) {
  ExpectDamageDetectedAndColdFallback([](const std::string& path) {
    std::string bytes = ReadFileBytes(path);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x04);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  });
}

TEST(ServicePersistenceTest, FormatVersionSkewFallsBackCold) {
  ExpectDamageDetectedAndColdFallback([](const std::string& path) {
    SnapshotWriter future("causumx-snapshot", 999, "whatever");
    future.AddSection("table", "from a future format");
    future.WriteFile(path);
  });
}

TEST(ServicePersistenceTest, GarbageFileFallsBackCold) {
  ExpectDamageDetectedAndColdFallback([](const std::string& path) {
    WriteFileDurable(path, "this is not a snapshot container at all");
  });
}

TEST(ServicePersistenceTest, StaleSnapshotOfDifferentDataRejected) {
  TempDir dir;
  {
    // Snapshot of the *appended* table: its key carries version 1.
    GeneratedDataset ds = MakeData();
    ExplanationService service(PersistentOptions(dir.path));
    ServiceOptions o = PersistentOptions(dir.path);
    o.snapshot_on_append = false;  // snapshot manually below
    ExplanationService svc(o);
    svc.RegisterTable("t", std::move(ds.table));
    svc.Append("t", svc.GetTable("t")->MaterializeRows(0, 5));
    svc.SaveSnapshot("t");
  }
  // Restart registers the *original* table (fresh parse, version 0):
  // the key no longer matches and the snapshot must be rejected.
  GeneratedDataset ds = MakeData();
  ExplanationService restarted(PersistentOptions(dir.path));
  restarted.RegisterTable("t", std::move(ds.table));
  EXPECT_EQ(restarted.Stats().snapshots_restored, 0u);
  EXPECT_EQ(restarted.Stats().snapshots_rejected, 1u);
  const CauSumXResult r = restarted.Explain("t", ds.default_query, ds.dag,
                                            MakeConfig(MakeData()));
  EXPECT_FALSE(SummaryToJson(r.summary).empty());
}

TEST(ServicePersistenceTest, KilledWriterLeavesPreviousSnapshotLoadable) {
  TempDir dir;
  std::string cold_json;
  {
    GeneratedDataset ds = MakeData();
    ExplanationService service(PersistentOptions(dir.path));
    service.RegisterTable("t", std::move(ds.table));
    cold_json = SummaryToJson(
        service.Explain("t", ds.default_query, ds.dag,
                        MakeConfig(MakeData()))
            .summary);
    service.SaveSnapshot("t");
  }
  // Simulate a writer killed mid-snapshot: a half-written temp file next
  // to the durable one. Readers must ignore it.
  ExplanationService restarted(PersistentOptions(dir.path));
  {
    std::ofstream tmp(restarted.SnapshotPath("t") + ".tmp",
                      std::ios::binary);
    tmp << "half-written garbage from a crashed process";
  }
  GeneratedDataset ds = MakeData();
  restarted.RegisterTable("t", std::move(ds.table));
  EXPECT_EQ(restarted.Stats().snapshots_restored, 1u);
  const CauSumXResult warm = restarted.Explain(
      "t", ds.default_query, ds.dag, MakeConfig(MakeData()));
  EXPECT_EQ(SummaryToJson(warm.summary), cold_json);

  // RestoreAll must skip the .tmp too (and restore the one real table).
  ExplanationService scanner(PersistentOptions(dir.path));
  EXPECT_EQ(scanner.RestoreAll(), 1u);
}

TEST(ServicePersistenceTest, AppendWritesSnapshotAutomatically) {
  TempDir dir;
  GeneratedDataset ds = MakeData();
  ExplanationService service(PersistentOptions(dir.path));
  service.RegisterTable("t", std::move(ds.table));
  EXPECT_FALSE(FileExists(service.SnapshotPath("t")));
  service.Append("t", service.GetTable("t")->MaterializeRows(0, 3));
  EXPECT_TRUE(FileExists(service.SnapshotPath("t")));
  EXPECT_GE(service.Stats().snapshots_written, 1u);
  // And the snapshot matches the post-append state: a restart that
  // rebuilds the same appended table restores warm.
  const uint64_t version = service.TableVersion("t");
  EXPECT_EQ(version, 1u);
}

TEST(ServicePersistenceTest, StatsEndpointReportsSnapshots) {
  TempDir dir;
  GeneratedDataset ds = MakeData();
  ExplanationService service(PersistentOptions(dir.path));
  service.RegisterTable("t", std::move(ds.table));
  service.SaveSnapshot("t");

  auto handler = MakeRestHandler(service);
  HttpRequest req;
  req.method = "GET";
  req.path = "/v1/stats";
  const HttpResponse resp = handler(req);
  EXPECT_EQ(resp.status, 200);
  const JsonValue parsed = JsonValue::Parse(resp.body);
  const JsonValue* snaps = parsed.Find("snapshots");
  ASSERT_NE(snaps, nullptr);
  EXPECT_TRUE(snaps->GetBool("enabled", false));
  EXPECT_EQ(snaps->GetNumber("written", 0), 1.0);
  EXPECT_GE(snaps->GetNumber("last_written_age_seconds", -1), 0.0);
}

TEST(ServicePersistenceTest, ExplainResponseIsParseableJson) {
  // Regression for the non-finite leak: whatever estimates a query
  // produces, the REST explain body must parse as JSON.
  GeneratedDataset ds = MakeData();
  ExplanationService service;
  service.RegisterTable("synthetic", std::move(ds.table));
  auto handler = MakeRestHandler(service);

  JsonWriter body;
  body.BeginObject().Key("table").String("synthetic")
      .Key("group_by").BeginArray();
  for (const auto& a : ds.default_query.group_by) body.String(a);
  body.EndArray().Key("avg").String(ds.default_query.avg_attribute)
      .Key("discover").String("nodag")
      .Key("per_group_patterns").Bool(false)
      .EndObject();

  HttpRequest req;
  req.method = "POST";
  req.path = "/v1/explain";
  req.body = body.str();
  const HttpResponse resp = handler(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NO_THROW(JsonValue::Parse(resp.body));
}

}  // namespace
}  // namespace causumx
