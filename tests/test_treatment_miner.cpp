// Unit tests for the treatment-pattern lattice (Algorithm 2).

#include <gtest/gtest.h>

#include "mining/treatment_miner.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Outcome = 3*(A=a1) + 6*(A=a1 AND C=c1) - 5*(B=b1) + noise.
// Under the CATE definition (treated vs everyone else), the pair
// A=a1 AND C=c1 strictly beats every singleton on the positive side, and
// conjunctions involving B=b1 dominate the negative side.
Table MakePlantedTable(size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("A", ColumnType::kCategorical);
  t.AddColumn("B", ColumnType::kCategorical);
  t.AddColumn("C", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool a = rng.NextBool(0.5);
    const bool b = rng.NextBool(0.5);
    const bool c = rng.NextBool(0.5);
    double y = rng.NextGaussian(0, 0.5);
    if (a) y += 3.0;
    if (a && c) y += 6.0;
    if (b) y -= 5.0;
    t.AddRow({Value(a ? "a1" : "a0"), Value(b ? "b1" : "b0"),
              Value(c ? "c1" : "c0"), Value(y)});
  }
  return t;
}

CausalDag MakeDag() {
  CausalDag g;
  g.AddEdge("A", "Y");
  g.AddEdge("B", "Y");
  g.AddEdge("C", "Y");
  return g;
}

Bitset AllRows(const Table& t) {
  Bitset b(t.NumRows());
  b.SetAll();
  return b;
}

TEST(TreatmentMinerTest, AtomGenerationCategorical) {
  const Table t = MakePlantedTable(100, 1);
  TreatmentMinerOptions opt;
  const auto atoms = GenerateAtomicTreatments(t, {"A", "B"}, opt);
  // Two values per attribute -> 4 equality atoms.
  EXPECT_EQ(atoms.size(), 4u);
  for (const auto& a : atoms) EXPECT_EQ(a.op, CompareOp::kEq);
}

TEST(TreatmentMinerTest, AtomGenerationNumericThresholds) {
  Table t;
  t.AddColumn("x", ColumnType::kDouble);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) t.AddRow({Value(rng.NextGaussian())});
  TreatmentMinerOptions opt;
  opt.numeric_bins = 3;
  const auto atoms = GenerateAtomicTreatments(t, {"x"}, opt);
  EXPECT_GE(atoms.size(), 4u);  // pairs of (<, >=) per threshold
  for (const auto& a : atoms) {
    EXPECT_TRUE(a.op == CompareOp::kLt || a.op == CompareOp::kGe);
  }
}

TEST(TreatmentMinerTest, ConstantAttributeSkipped) {
  Table t;
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  for (int i = 0; i < 50; ++i) t.AddRow({Value("same"), Value(1.0)});
  const auto atoms = GenerateAtomicTreatments(t, {"x"}, {});
  EXPECT_TRUE(atoms.empty());
}

TEST(TreatmentMinerTest, FindsPlantedPositiveInteraction) {
  const Table t = MakePlantedTable(6000, 3);
  EffectEstimator est(t, MakeDag());
  TreatmentMinerOptions opt;
  opt.level_keep_fraction = 1.0;  // explore the full lattice in the test
  const auto result = MineTopTreatment(
      est, AllRows(t), "Y", {"A", "B", "C"}, TreatmentSign::kPositive, opt);
  ASSERT_TRUE(result.has_value());
  // The winning positive treatment must capture the A*C interaction.
  EXPECT_TRUE(result->pattern.UsesAttribute("A"));
  EXPECT_TRUE(result->pattern.UsesAttribute("C"));
  EXPECT_GT(result->effect.cate, 6.5);
  EXPECT_TRUE(result->effect.Significant());
}

TEST(TreatmentMinerTest, FindsPlantedNegative) {
  const Table t = MakePlantedTable(6000, 4);
  EffectEstimator est(t, MakeDag());
  TreatmentMinerOptions opt;
  opt.level_keep_fraction = 1.0;
  const auto result = MineTopTreatment(
      est, AllRows(t), "Y", {"A", "B", "C"}, TreatmentSign::kNegative, opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->pattern.UsesAttribute("B"));
  EXPECT_LT(result->effect.cate, -5.0);
}

TEST(TreatmentMinerTest, RespectsSubpopulation) {
  // Effect of A flips sign between the two halves of the table.
  Table t;
  t.AddColumn("grp", ColumnType::kCategorical);
  t.AddColumn("A", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(5);
  for (size_t i = 0; i < 4000; ++i) {
    const bool first = i < 2000;
    const bool a = rng.NextBool(0.5);
    const double y =
        (first ? 3.0 : -3.0) * (a ? 1.0 : 0.0) + rng.NextGaussian(0, 0.5);
    t.AddRow({Value(first ? "g1" : "g2"), Value(a ? "1" : "0"), Value(y)});
  }
  CausalDag g;
  g.AddEdge("A", "Y");
  EffectEstimator est(t, g);
  Bitset first_half(t.NumRows());
  for (size_t i = 0; i < 2000; ++i) first_half.Set(i);
  Bitset second_half(t.NumRows());
  for (size_t i = 2000; i < 4000; ++i) second_half.Set(i);

  const auto pos1 = MineTopTreatment(est, first_half, "Y", {"A"},
                                     TreatmentSign::kPositive);
  ASSERT_TRUE(pos1.has_value());
  EXPECT_NEAR(pos1->effect.cate, 3.0, 0.3);

  const auto pos2 = MineTopTreatment(est, second_half, "Y", {"A"},
                                     TreatmentSign::kPositive);
  ASSERT_TRUE(pos2.has_value());
  EXPECT_NEAR(pos2->effect.cate, 3.0, 0.3);  // A=0 has +3 effect there
}

TEST(TreatmentMinerTest, DagPrunesCausallyInertAttributes) {
  // D has no path to Y in the DAG: its patterns must never be evaluated.
  Table t = MakePlantedTable(2000, 6);
  // Rebuild with an extra inert column.
  Table t2;
  t2.AddColumn("A", ColumnType::kCategorical);
  t2.AddColumn("B", ColumnType::kCategorical);
  t2.AddColumn("C", ColumnType::kCategorical);
  t2.AddColumn("D", ColumnType::kCategorical);
  t2.AddColumn("Y", ColumnType::kDouble);
  Rng rng(7);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    t2.AddRow({t.column("A").GetValue(r), t.column("B").GetValue(r),
               t.column("C").GetValue(r),
               Value(rng.NextBool(0.5) ? "d1" : "d0"),
               t.column("Y").GetValue(r)});
  }
  CausalDag g = MakeDag();
  g.AddNode("D");  // in the DAG but with no edge to Y
  EffectEstimator est(t2, g);
  const auto result = MineTopTreatment(est, AllRows(t2), "Y",
                                       {"A", "B", "C", "D"},
                                       TreatmentSign::kPositive);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->pattern.UsesAttribute("D"));
}

TEST(TreatmentMinerTest, NoSignificantTreatmentReturnsNull) {
  // Pure-noise outcome: nothing should clear the significance bar.
  Table t;
  t.AddColumn("A", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(8);
  for (size_t i = 0; i < 1000; ++i) {
    t.AddRow({Value(rng.NextBool(0.5) ? "1" : "0"),
              Value(rng.NextGaussian())});
  }
  CausalDag g;
  g.AddEdge("A", "Y");
  EffectEstimator est(t, g);
  TreatmentMinerOptions opt;
  opt.alpha = 0.001;  // strict bar to keep the test deterministic
  const auto result = MineTopTreatment(est, AllRows(t), "Y", {"A"},
                                       TreatmentSign::kPositive, opt);
  EXPECT_FALSE(result.has_value());
}

TEST(TreatmentMinerTest, StatsReportEvaluations) {
  const Table t = MakePlantedTable(2000, 9);
  EffectEstimator est(t, MakeDag());
  TreatmentMiningStats stats;
  const auto result = MineTopTreatmentWithStats(
      est, AllRows(t), "Y", {"A", "B", "C"}, TreatmentSign::kPositive, {},
      &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(stats.patterns_evaluated, 6u);  // at least the atoms
  EXPECT_GE(stats.levels_explored, 1u);
}

TEST(TreatmentMinerTest, MaxDepthOneStopsAtAtoms) {
  const Table t = MakePlantedTable(4000, 10);
  EffectEstimator est(t, MakeDag());
  TreatmentMinerOptions opt;
  opt.max_depth = 1;
  const auto result = MineTopTreatment(est, AllRows(t), "Y",
                                       {"A", "B", "C"},
                                       TreatmentSign::kPositive, opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pattern.Size(), 1u);
  EXPECT_TRUE(result->pattern.UsesAttribute("A"));
}

TEST(TreatmentMinerTest, TreatedSetDedupSurvivesHashCollisions) {
  // Two distinct treated sets forced into the same hash bucket: the
  // top-k dedup must keep both (comparing bit content), and only reject
  // a genuinely identical set.
  Bitset a(64);
  a.Set(1);
  a.Set(7);
  Bitset b(64);
  b.Set(2);
  b.Set(9);
  Bitset a_again(64);
  a_again.Set(1);
  a_again.Set(7);

  const uint64_t collided_hash = 42;  // simulate a 64-bit Hash() collision
  TreatedSetDedup seen;
  EXPECT_TRUE(InsertUniqueTreatedSet(&seen, collided_hash, a));
  EXPECT_TRUE(InsertUniqueTreatedSet(&seen, collided_hash, b));
  EXPECT_FALSE(InsertUniqueTreatedSet(&seen, collided_hash, a_again));
  // Distinct hashes never interfere.
  EXPECT_TRUE(InsertUniqueTreatedSet(&seen, 43, a_again));
}

}  // namespace
}  // namespace causumx
