// Unit tests for the group-by-average query engine (Section 4).

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/group_query.h"
#include "util/rng.h"

namespace causumx {
namespace {

Table MakeTable() {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("role", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  t.AddRow({Value("US"), Value("dev"), Value(100.0)});
  t.AddRow({Value("US"), Value("qa"), Value(80.0)});
  t.AddRow({Value("IN"), Value("dev"), Value(30.0)});
  t.AddRow({Value("IN"), Value("dev"), Value(50.0)});
  t.AddRow({Value("DE"), Value("dev"), Value()});      // null outcome
  t.AddRow({Value(), Value("dev"), Value(70.0)});      // null key
  return t;
}

GroupByAvgQuery MakeQuery() {
  GroupByAvgQuery q;
  q.group_by = {"country"};
  q.avg_attribute = "salary";
  return q;
}

TEST(GroupQueryTest, AveragesAndCounts) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  ASSERT_EQ(view.NumGroups(), 2u);  // DE dropped (null outcome only)
  EXPECT_EQ(view.group(0).KeyString(), "US");
  EXPECT_DOUBLE_EQ(view.group(0).average, 90.0);
  EXPECT_EQ(view.group(0).count, 2u);
  EXPECT_EQ(view.group(1).KeyString(), "IN");
  EXPECT_DOUBLE_EQ(view.group(1).average, 40.0);
}

TEST(GroupQueryTest, NullKeyRowsExcluded) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(5), -1);
}

TEST(GroupQueryTest, NullOutcomeRowsExcluded) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(4), -1);
}

TEST(GroupQueryTest, RowGroupMapping) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(0), 0);
  EXPECT_EQ(view.GroupOfRow(1), 0);
  EXPECT_EQ(view.GroupOfRow(2), 1);
  EXPECT_EQ(view.GroupOfRow(3), 1);
  const auto active = view.ActiveRows();
  EXPECT_EQ(active.size(), 4u);
}

TEST(GroupQueryTest, WherePushdown) {
  const Table t = MakeTable();
  GroupByAvgQuery q = MakeQuery();
  q.where = Pattern({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  const AggregateView view = AggregateView::Evaluate(t, q);
  ASSERT_EQ(view.NumGroups(), 2u);
  EXPECT_DOUBLE_EQ(view.group(0).average, 100.0);  // US: only the dev row
  EXPECT_EQ(view.group(0).count, 1u);
}

TEST(GroupQueryTest, CompositeGroupBy) {
  const Table t = MakeTable();
  GroupByAvgQuery q;
  q.group_by = {"country", "role"};
  q.avg_attribute = "salary";
  const AggregateView view = AggregateView::Evaluate(t, q);
  ASSERT_EQ(view.NumGroups(), 3u);  // US|dev, US|qa, IN|dev
  EXPECT_EQ(view.group(0).KeyString(), "US|dev");
  EXPECT_EQ(view.group(2).KeyString(), "IN|dev");
  EXPECT_DOUBLE_EQ(view.group(2).average, 40.0);
}

TEST(GroupQueryTest, ToSqlRendering) {
  GroupByAvgQuery q = MakeQuery();
  EXPECT_EQ(q.ToSql("T"),
            "SELECT country, AVG(salary) FROM T GROUP BY country");
  q.where = Pattern({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  EXPECT_EQ(q.ToSql(),
            "SELECT country, AVG(salary) FROM D WHERE role = dev "
            "GROUP BY country");
}

TEST(GroupQueryTest, EmptyTableYieldsNoGroups) {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.NumGroups(), 0u);
}

TEST(GroupQueryTest, CompensatedAverageSurvivesLargeOffsets) {
  // Regression for the naive += accumulation: 100k salaries near 1e8 in
  // one group. The exact average is 1e8 + mean(0.1 * (i % 7)); naive
  // summation drifts by many ulps once the partial sum passes 1e13,
  // while the compensated path stays within ~1 ulp of the average.
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  const size_t n = 100000;  // multiple of 7 not required; compute exactly
  long double exact = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    const double v = 1e8 + 0.1 * static_cast<double>(i % 7);
    // causumx-lint: allow(fp-accumulation) long-double oracle for the sum
    exact += static_cast<long double>(v);
    t.AddRow({Value("US"), Value(v)});
  }
  const double expected = static_cast<double>(exact / n);

  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  ASSERT_EQ(view.NumGroups(), 1u);
  EXPECT_NEAR(view.group(0).average, expected, 1e-7);
}

// The dictionary-code fast path must agree bit-for-bit with the
// string-keyed reference path — group order, keys, counts, member rows,
// row mapping, and (since both use compensated summation) the averages.
void ExpectViewsIdentical(const AggregateView& fast,
                          const AggregateView& ref) {
  ASSERT_EQ(fast.NumGroups(), ref.NumGroups());
  for (size_t g = 0; g < fast.NumGroups(); ++g) {
    EXPECT_EQ(fast.group(g).KeyString(), ref.group(g).KeyString()) << g;
    EXPECT_EQ(fast.group(g).count, ref.group(g).count) << g;
    EXPECT_EQ(fast.group(g).rows, ref.group(g).rows) << g;
    // Bit-identical, not just close.
    EXPECT_EQ(fast.group(g).average, ref.group(g).average) << g;
  }
  for (size_t r = 0; r < fast.ActiveRows().size(); ++r) {
    EXPECT_EQ(fast.ActiveRows()[r], ref.ActiveRows()[r]);
  }
}

TEST(GroupQueryTest, FastPathMatchesReferenceOnFixtures) {
  const Table t = MakeTable();
  for (const auto& group_by :
       {std::vector<std::string>{"country"},
        std::vector<std::string>{"country", "role"}}) {
    GroupByAvgQuery q;
    q.group_by = group_by;
    q.avg_attribute = "salary";
    ExpectViewsIdentical(AggregateView::Evaluate(t, q),
                         AggregateView::EvaluateReference(t, q));
    q.where =
        Pattern({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
    ExpectViewsIdentical(AggregateView::Evaluate(t, q),
                         AggregateView::EvaluateReference(t, q));
  }
}

TEST(GroupQueryTest, FastPathMatchesReferenceOnRandomTables) {
  // Property sweep over random tables: categorical and integer composite
  // keys (the exact-key types), ~5% nulls everywhere, outcome with
  // large-offset values so the summation paths are exercised too.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    Table t;
    t.AddColumn("c", ColumnType::kCategorical);
    t.AddColumn("i", ColumnType::kInt64);
    t.AddColumn("y", ColumnType::kDouble);
    const char* cats[] = {"a", "b", "c", "d"};
    const size_t n = 500 + rng.NextBounded(500);
    for (size_t r = 0; r < n; ++r) {
      t.AddRow({rng.NextBool(0.05) ? Value() : Value(cats[rng.NextBounded(4)]),
                rng.NextBool(0.05) ? Value() : Value(rng.NextInt(-3, 3)),
                rng.NextBool(0.05) ? Value()
                                   : Value(1e8 + rng.NextGaussian())});
    }
    for (const auto& group_by :
         {std::vector<std::string>{"c"}, std::vector<std::string>{"i"},
          std::vector<std::string>{"c", "i"}}) {
      GroupByAvgQuery q;
      q.group_by = group_by;
      q.avg_attribute = "y";
      ExpectViewsIdentical(AggregateView::Evaluate(t, q),
                           AggregateView::EvaluateReference(t, q));
    }
  }
}

}  // namespace
}  // namespace causumx
