// Unit tests for the group-by-average query engine (Section 4).

#include <gtest/gtest.h>

#include "dataset/group_query.h"

namespace causumx {
namespace {

Table MakeTable() {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("role", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  t.AddRow({Value("US"), Value("dev"), Value(100.0)});
  t.AddRow({Value("US"), Value("qa"), Value(80.0)});
  t.AddRow({Value("IN"), Value("dev"), Value(30.0)});
  t.AddRow({Value("IN"), Value("dev"), Value(50.0)});
  t.AddRow({Value("DE"), Value("dev"), Value()});      // null outcome
  t.AddRow({Value(), Value("dev"), Value(70.0)});      // null key
  return t;
}

GroupByAvgQuery MakeQuery() {
  GroupByAvgQuery q;
  q.group_by = {"country"};
  q.avg_attribute = "salary";
  return q;
}

TEST(GroupQueryTest, AveragesAndCounts) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  ASSERT_EQ(view.NumGroups(), 2u);  // DE dropped (null outcome only)
  EXPECT_EQ(view.group(0).KeyString(), "US");
  EXPECT_DOUBLE_EQ(view.group(0).average, 90.0);
  EXPECT_EQ(view.group(0).count, 2u);
  EXPECT_EQ(view.group(1).KeyString(), "IN");
  EXPECT_DOUBLE_EQ(view.group(1).average, 40.0);
}

TEST(GroupQueryTest, NullKeyRowsExcluded) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(5), -1);
}

TEST(GroupQueryTest, NullOutcomeRowsExcluded) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(4), -1);
}

TEST(GroupQueryTest, RowGroupMapping) {
  const Table t = MakeTable();
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.GroupOfRow(0), 0);
  EXPECT_EQ(view.GroupOfRow(1), 0);
  EXPECT_EQ(view.GroupOfRow(2), 1);
  EXPECT_EQ(view.GroupOfRow(3), 1);
  const auto active = view.ActiveRows();
  EXPECT_EQ(active.size(), 4u);
}

TEST(GroupQueryTest, WherePushdown) {
  const Table t = MakeTable();
  GroupByAvgQuery q = MakeQuery();
  q.where = Pattern({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  const AggregateView view = AggregateView::Evaluate(t, q);
  ASSERT_EQ(view.NumGroups(), 2u);
  EXPECT_DOUBLE_EQ(view.group(0).average, 100.0);  // US: only the dev row
  EXPECT_EQ(view.group(0).count, 1u);
}

TEST(GroupQueryTest, CompositeGroupBy) {
  const Table t = MakeTable();
  GroupByAvgQuery q;
  q.group_by = {"country", "role"};
  q.avg_attribute = "salary";
  const AggregateView view = AggregateView::Evaluate(t, q);
  ASSERT_EQ(view.NumGroups(), 3u);  // US|dev, US|qa, IN|dev
  EXPECT_EQ(view.group(0).KeyString(), "US|dev");
  EXPECT_EQ(view.group(2).KeyString(), "IN|dev");
  EXPECT_DOUBLE_EQ(view.group(2).average, 40.0);
}

TEST(GroupQueryTest, ToSqlRendering) {
  GroupByAvgQuery q = MakeQuery();
  EXPECT_EQ(q.ToSql("T"),
            "SELECT country, AVG(salary) FROM T GROUP BY country");
  q.where = Pattern({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  EXPECT_EQ(q.ToSql(),
            "SELECT country, AVG(salary) FROM D WHERE role = dev "
            "GROUP BY country");
}

TEST(GroupQueryTest, EmptyTableYieldsNoGroups) {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("salary", ColumnType::kDouble);
  const AggregateView view = AggregateView::Evaluate(t, MakeQuery());
  EXPECT_EQ(view.NumGroups(), 0u);
}

}  // namespace
}  // namespace causumx
