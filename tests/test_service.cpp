// Tests for the ExplanationService: concurrent queries over one table,
// warm-vs-cold cache behavior, LRU eviction under a tight memory budget
// (results bit-identical), session borrowing, and the registry.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/explanation_service.h"

namespace causumx {
namespace {

GeneratedDataset MakeData() {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  opt.num_treatment_attrs = 4;
  return MakeSyntheticDataset(opt);
}

CauSumXConfig MakeConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

// One registered dataset shared by most tests.
struct ServiceWorld {
  GeneratedDataset ds;
  ExplanationService service;
  CauSumXConfig config;

  explicit ServiceWorld(ServiceOptions options = {})
      : ds(MakeData()), service(options), config(MakeConfig(ds)) {
    service.RegisterTable("synthetic", std::move(ds.table));
  }
};

TEST(ServiceTest, ExplainMatchesRunCauSumX) {
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  const CauSumXResult direct =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  ExplanationService service;
  service.RegisterTable("synthetic", std::move(ds.table));
  const CauSumXResult via_service =
      service.Explain("synthetic", ds.default_query, ds.dag, config);

  EXPECT_EQ(SummaryToJson(via_service.summary),
            SummaryToJson(direct.summary));
  EXPECT_EQ(service.Stats().queries_executed, 1u);
}

TEST(ServiceTest, ConcurrentQueriesOnOneTableAgree) {
  ServiceWorld w;
  const CauSumXConfig config = w.config;

  // A mix of repeated identical queries: every result must agree with the
  // single-threaded reference, no matter how the threads interleave on
  // the shared caches.
  const CauSumXResult reference =
      w.service.Explain("synthetic", w.ds.default_query, w.ds.dag, config);
  const std::string expected = SummaryToJson(reference.summary);

  std::vector<std::future<CauSumXResult>> futures;
  for (int i = 0; i < 8; ++i) {
    CauSumXConfig c = config;
    c.num_threads = 1;  // pool-level concurrency is the parallelism source
    futures.push_back(
        w.service.ExplainAsync("synthetic", w.ds.default_query, w.ds.dag, c));
  }
  for (auto& f : futures) {
    const CauSumXResult r = f.get();
    EXPECT_EQ(SummaryToJson(r.summary), expected);
  }
  EXPECT_EQ(w.service.Stats().queries_executed, 9u);
}

TEST(ServiceTest, WarmRepeatServedFromCaches) {
  ServiceWorld w;
  const CauSumXResult cold =
      w.service.Explain("synthetic", w.ds.default_query, w.ds.dag, w.config);
  const CauSumXResult warm =
      w.service.Explain("synthetic", w.ds.default_query, w.ds.dag, w.config);

  // Bit-identical summaries.
  EXPECT_EQ(SummaryToJson(warm.summary), SummaryToJson(cold.summary));

  // The second run re-estimated nothing: every CATE was a memo hit and no
  // new predicate bitset was materialized (counters are cumulative on the
  // shared engine/context).
  const uint64_t new_misses = warm.cache_stats.estimator.memo_misses -
                              cold.cache_stats.estimator.memo_misses;
  const uint64_t new_hits = warm.cache_stats.estimator.memo_hits -
                            cold.cache_stats.estimator.memo_hits;
  EXPECT_EQ(new_misses, 0u);
  EXPECT_GT(new_hits, 0u);
  EXPECT_EQ(warm.cache_stats.eval.bitsets_materialized,
            cold.cache_stats.eval.bitsets_materialized);
}

TEST(ServiceTest, TightBudgetEvictsButResultsAreIdentical) {
  // The generator is deterministic, so two MakeData() calls give
  // bit-identical tables (Table itself is move-only).
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);

  ExplanationService unlimited;
  unlimited.RegisterTable("t", std::move(MakeData().table));
  const CauSumXResult free_run =
      unlimited.Explain("t", ds.default_query, ds.dag, config);

  // A budget far below what one query populates: enforcement must evict
  // after every query, keep the accounted bytes under the cap, and never
  // change a result.
  ServiceOptions tight;
  tight.memory_budget_bytes = 4 * 1024;
  ExplanationService service(tight);
  service.RegisterTable("t", std::move(ds.table));
  for (int round = 0; round < 3; ++round) {
    const CauSumXResult r =
        service.Explain("t", ds.default_query, ds.dag, config);
    EXPECT_EQ(SummaryToJson(r.summary), SummaryToJson(free_run.summary))
        << "round " << round;
    EXPECT_LE(service.CacheBytes(), tight.memory_budget_bytes)
        << "round " << round;
  }
  EXPECT_GT(service.Stats().budget_enforcements, 0u);
  const auto engine_stats = service.Engine("t")->Stats();
  EXPECT_GT(engine_stats.bitsets_evicted, 0u);
}

// --shards edge values: 0 (auto), 1 (serial reference), and a count far
// beyond the row count (clamps to one shard per 64-row block) must all
// produce bit-identical summaries, and the resolved plan must respect
// the clamp.
TEST(ServiceTest, ShardKnobEdgeValuesAreValidAndBitIdentical) {
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  const size_t rows = ds.table.NumRows();

  std::string reference;
  for (const size_t shards : {size_t{1}, size_t{0}, size_t{7}, rows * 10}) {
    ServiceOptions options;
    options.num_shards = shards;
    options.num_threads = 3;
    ExplanationService service(options);
    service.RegisterTable("t", std::move(MakeData().table));
    const CauSumXResult r =
        service.Explain("t", ds.default_query, ds.dag, config);
    const auto& plan = service.Engine("t")->plan();
    EXPECT_GE(plan.NumShards(), size_t{1}) << "shards=" << shards;
    EXPECT_LE(plan.NumShards(), (rows + 63) / 64) << "shards=" << shards;
    if (shards == 1) {
      EXPECT_EQ(plan.NumShards(), size_t{1});
      reference = SummaryToJson(r.summary);
    } else {
      EXPECT_EQ(SummaryToJson(r.summary), reference)
          << "shards=" << shards;
    }
    EXPECT_EQ(service.Engine("t")->Stats().num_shards, plan.NumShards());
  }
}

// Per-shard cache segments evict individually under a tight budget: a
// multi-shard engine sheds (predicate, shard) segments, stays under the
// cap, and every post-eviction query still matches the unlimited run.
TEST(ServiceTest, TightBudgetEvictsPerShardSegments) {
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);

  ExplanationService unlimited;
  unlimited.RegisterTable("t", std::move(MakeData().table));
  const CauSumXResult free_run =
      unlimited.Explain("t", ds.default_query, ds.dag, config);

  ServiceOptions tight;
  tight.memory_budget_bytes = 4 * 1024;
  tight.num_shards = 8;
  tight.num_threads = 3;
  ExplanationService service(tight);
  service.RegisterTable("t", std::move(ds.table));
  for (int round = 0; round < 3; ++round) {
    const CauSumXResult r =
        service.Explain("t", ds.default_query, ds.dag, config);
    EXPECT_EQ(SummaryToJson(r.summary), SummaryToJson(free_run.summary))
        << "round " << round;
    EXPECT_LE(service.CacheBytes(), tight.memory_budget_bytes)
        << "round " << round;
  }
  const auto stats = service.Engine("t")->Stats();
  EXPECT_GT(stats.num_shards, size_t{1});
  // Segment-granular accounting: with an 8-shard plan the evicted-
  // segment count exceeds what whole-bitset eviction could produce for
  // the number of predicates interned.
  EXPECT_GT(stats.bitsets_evicted, stats.predicates_interned);
  // Rebuilds after eviction happened segment-wise too (cumulative
  // builds exceed one build per (predicate, shard) pair only through
  // rematerialization).
  EXPECT_GT(stats.bitsets_materialized, 0u);
}

TEST(ServiceTest, SessionBorrowsServiceCaches) {
  ServiceWorld w;
  // Warm the caches with one service query...
  w.service.Explain("synthetic", w.ds.default_query, w.ds.dag, w.config);
  const auto warm_stats = w.service.Engine("synthetic")->Stats();

  // ...then a borrowed session mines without re-materializing bitsets.
  ExplorationSession session = w.service.OpenSession(
      "synthetic", w.ds.default_query, w.ds.dag, w.config);
  EXPECT_EQ(session.engine().get(), w.service.Engine("synthetic").get());
  session.Solve();
  EXPECT_EQ(session.engine()->Stats().bitsets_materialized,
            warm_stats.bitsets_materialized);
  EXPECT_GT(session.CacheStats().estimator.memo_hits, 0u);
}

TEST(ServiceTest, ContextsKeyedByDagAndOptions) {
  ServiceWorld w;
  const auto a = w.service.Context("synthetic", w.ds.dag, {});
  const auto b = w.service.Context("synthetic", w.ds.dag, {});
  EXPECT_EQ(a.get(), b.get());  // same pair -> same memo

  EstimatorOptions ipw;
  ipw.method = EstimationMethod::kIpw;
  const auto c = w.service.Context("synthetic", w.ds.dag, ipw);
  EXPECT_NE(a.get(), c.get());

  CausalDag other = w.ds.dag;
  other.AddNode("Extra");
  other.AddEdge("Extra", w.ds.default_query.avg_attribute);
  const auto d = w.service.Context("synthetic", other, {});
  EXPECT_NE(a.get(), d.get());
}

TEST(ServiceTest, RegistryBasics) {
  ExplanationService service;
  EXPECT_FALSE(service.HasTable("x"));
  EXPECT_THROW(service.GetTable("x"), std::out_of_range);
  EXPECT_THROW(
      service.Explain("x", GroupByAvgQuery{}, CausalDag{}, CauSumXConfig{}),
      std::out_of_range);

  GeneratedDataset ds = MakeData();
  service.RegisterTable("x", std::move(ds.table));
  EXPECT_TRUE(service.HasTable("x"));
  EXPECT_EQ(service.TableNames(), std::vector<std::string>{"x"});
  EXPECT_NE(service.Engine("x"), nullptr);

  // EnsureCsv on a registered name is a no-op keeping the live entry
  // (and its warm engine) — it must not even touch the path.
  const auto engine_before = service.Engine("x");
  const auto table_before = service.GetTable("x");
  EXPECT_EQ(service.EnsureCsv("x", "/no/such/file.csv").get(),
            table_before.get());
  EXPECT_EQ(service.Engine("x").get(), engine_before.get());

  service.DropTable("x");
  EXPECT_FALSE(service.HasTable("x"));
}

}  // namespace
}  // namespace causumx
