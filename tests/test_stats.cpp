// Unit tests for the statistics primitives, including reference values
// for the distribution functions used by CI tests and CATE p-values.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace causumx {
namespace {

TEST(StatsTest, MeanVarianceBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev({1, 1, 1}), 0.0, 1e-12);
}

TEST(StatsTest, PearsonCorrelationKnownValues) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0, 1e-12);
  // Hand-computed example.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4, 5}, {2, 1, 4, 3, 5}), 0.8,
              1e-12);
}

TEST(StatsTest, NormalCdfReference) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(StatsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
  }
  EXPECT_THROW(NormalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(1.0), std::invalid_argument);
}

TEST(StatsTest, IncompleteBetaReference) {
  // I_x(a, b) reference values (scipy.special.betainc).
  EXPECT_NEAR(IncompleteBeta(2, 3, 0.5), 0.6875, 1e-9);
  // Closed form: I_x(1/2, 1/2) = (2/pi) * asin(sqrt(x)).
  EXPECT_NEAR(IncompleteBeta(0.5, 0.5, 0.3),
              2.0 / M_PI * std::asin(std::sqrt(0.3)), 1e-8);
  EXPECT_DOUBLE_EQ(IncompleteBeta(1, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(1, 1, 1.0), 1.0);
  EXPECT_NEAR(IncompleteBeta(1, 1, 0.42), 0.42, 1e-10);  // uniform case
}

TEST(StatsTest, StudentTCdfReference) {
  // scipy.stats.t.cdf reference values.
  EXPECT_NEAR(StudentTCdf(0.0, 10), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(1.0, 10), 0.8295534338489701, 1e-8);
  EXPECT_NEAR(StudentTCdf(-2.0, 5), 0.05096973941492917, 1e-8);
  // 2.228 is the textbook 97.5% critical value for t(10).
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-4);
}

TEST(StatsTest, TwoSidedPValues) {
  // t = 1.96 with huge df approaches the normal two-sided 0.05.
  EXPECT_NEAR(TwoSidedPValueT(1.959963984540054, 1e6), 0.05, 1e-4);
  EXPECT_NEAR(TwoSidedPValueZ(1.959963984540054), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(TwoSidedPValueT(0.0, 10), 1.0);
  EXPECT_LT(TwoSidedPValueT(10.0, 30), 1e-9);
}

TEST(StatsTest, KendallTauPerfectAgreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0, 1e-12);
}

TEST(StatsTest, KendallTauKnownValue) {
  // One discordant pair among six: tau = (5 - 1) / 6.
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {1, 2, 4, 3}), 4.0 / 6.0, 1e-12);
}

TEST(StatsTest, KendallTauHandlesTies) {
  const double tau = KendallTau({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(tau, 0.7);
  EXPECT_LE(tau, 1.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  RunningStats rs;
  const std::vector<double> data = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : data) rs.Add(x);
  EXPECT_EQ(rs.Count(), data.size());
  EXPECT_NEAR(rs.Mean(), Mean(data), 1e-12);
  EXPECT_NEAR(rs.Variance(), Variance(data), 1e-12);
  EXPECT_NEAR(rs.StdDev(), StdDev(data), 1e-12);
}

TEST(StatsTest, KahanSumRecoversLargeOffsetPrecision) {
  // 100k values near 1e8: naive double summation drifts by the rounding
  // error of every partial sum (the sum passes 1e13, where one ulp is
  // ~2e-3); compensated summation tracks the long-double reference to
  // ~1 ulp of the result.
  KahanSum kahan;
  double naive = 0.0;
  long double exact = 0.0L;
  for (int i = 0; i < 100000; ++i) {
    const double v = 1e8 + 0.1 * (i % 7);
    kahan.Add(v);
    // The next two sums are the point of the test: the naive float sum
    // exhibits the error Kahan corrects, the long-double sum is the
    // oracle both are measured against.
    naive += v;  // causumx-lint: allow(fp-accumulation) deliberate
    exact += static_cast<long double>(v);
  }
  const double kahan_err =
      std::fabs(static_cast<double>(static_cast<long double>(kahan.Sum()) -
                                    exact));
  const double naive_err = std::fabs(
      static_cast<double>(static_cast<long double>(naive) - exact));
  EXPECT_LT(kahan_err, 1e-2);
  // The regression guard: the naive path must actually be worse, so this
  // test fails loudly if someone swaps the accumulator back.
  EXPECT_GT(naive_err, kahan_err * 10);
}

TEST(StatsTest, LogGammaMatchesFactorials) {
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

}  // namespace
}  // namespace causumx
