// Unit tests for string helpers.

#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace causumx {
namespace {

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilsTest, SplitSingleToken) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtilsTest, SplitEmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilsTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StringUtilsTest, FormatDoubleCompact) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

TEST(StringUtilsTest, HumanMagnitude) {
  EXPECT_EQ(HumanMagnitude(36000), "36K");
  EXPECT_EQ(HumanMagnitude(-39000), "-39K");
  EXPECT_EQ(HumanMagnitude(1200000), "1.2M");
  EXPECT_EQ(HumanMagnitude(0.55), "0.55");
  EXPECT_EQ(HumanMagnitude(42), "42");
}

TEST(StringUtilsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace causumx
