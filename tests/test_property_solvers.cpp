// Property-based tests for the LP/ILP machinery on random instances:
// solutions must satisfy their constraints, the LP bound must dominate
// integral solutions, and d-separation must predict vanishing partial
// correlations in linear-Gaussian data.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/dag.h"
#include "causal/independence.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace causumx {
namespace {

class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Random feasible-by-construction LPs: constraints are built around a
// known interior point, so kOptimal is required and the optimum must
// (weakly) beat that point.
TEST_P(SimplexPropertyTest, OptimumDominatesKnownFeasiblePoint) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(4);
  const size_t m = 1 + rng.NextBounded(4);

  std::vector<double> interior(n);
  for (auto& x : interior) x = rng.NextDouble() * 2.0;

  LinearProgram lp;
  lp.objective.resize(n);
  for (auto& c : lp.objective) c = rng.NextDouble() * 4.0 - 2.0;
  lp.upper_bounds.assign(n, 5.0);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(n);
    double lhs = 0.0;
    for (size_t j = 0; j < n; ++j) {
      row[j] = rng.NextDouble() * 2.0 - 0.5;
      // causumx-lint: allow(fp-accumulation) test setup, fixed index order
      lhs += row[j] * interior[j];
    }
    // rhs strictly above the interior point's lhs -> point stays feasible.
    lp.AddRow(std::move(row), ConstraintSense::kLe,
              lhs + 0.5 + rng.NextDouble());
  }

  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal) << "seed " << GetParam();

  double interior_obj = 0.0;
  // causumx-lint: allow(fp-accumulation) serial dot product, test oracle
  for (size_t j = 0; j < n; ++j) interior_obj += lp.objective[j] * interior[j];
  EXPECT_GE(sol.objective_value + 1e-6, interior_obj);

  // The returned point must satisfy every constraint and bound.
  for (size_t i = 0; i < lp.rows.size(); ++i) {
    double lhs = 0.0;
    for (size_t j = 0; j < n; ++j) lhs += lp.rows[i][j] * sol.values[j];
    EXPECT_LE(lhs, lp.rhs[i] + 1e-6);
  }
  for (size_t j = 0; j < n; ++j) {
    EXPECT_GE(sol.values[j], -1e-9);
    EXPECT_LE(sol.values[j], 5.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// Linear-Gaussian consistency: generate data from a random DAG's
// structural equations; every d-separated pair given a random single
// conditioner must show |partial correlation| near zero, and each direct
// edge must show strong dependence.
class DSeparationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DSeparationPropertyTest, DSeparationPredictsVanishingCorrelation) {
  Rng rng(GetParam() * 101 + 7);
  const size_t k = 5;
  std::vector<std::string> names;
  for (size_t i = 0; i < k; ++i) names.push_back("V" + std::to_string(i));

  // Random upper-triangular DAG with ~50% edge density and strong weights.
  CausalDag dag;
  for (const auto& n : names) dag.AddNode(n);
  std::vector<std::vector<double>> weight(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (rng.NextBool(0.5)) {
        dag.AddEdge(names[i], names[j]);
        weight[i][j] = rng.NextBool(0.5) ? 1.2 : -1.2;
      }
    }
  }

  Table t;
  for (const auto& n : names) t.AddColumn(n, ColumnType::kDouble);
  const size_t rows = 6000;
  std::vector<Value> row(k);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> vals(k, 0.0);
    for (size_t j = 0; j < k; ++j) {
      double v = rng.NextGaussian();
      for (size_t i = 0; i < j; ++i) v += weight[i][j] * vals[i];
      vals[j] = v;
      row[j] = Value(v);
    }
    t.AddRow(row);
  }

  FisherZTest test(t);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      // A direct edge a -> b shows strong dependence once b's *other*
      // parents are controlled for (marginal correlation alone can be
      // diluted by cancelling parallel paths).
      if (dag.HasEdge(names[a], names[b])) {
        std::vector<std::string> other_parents;
        for (const auto& p : dag.Parents(names[b])) {
          if (p != names[a]) other_parents.push_back(p);
        }
        EXPECT_GT(std::fabs(test.PartialCorrelation(names[a], names[b],
                                                    other_parents)),
                  0.2)
            << names[a] << "->" << names[b];
      }
      for (size_t c = 0; c < k; ++c) {
        if (c == a || c == b) continue;
        if (dag.DSeparated(names[a], names[b], {names[c]})) {
          EXPECT_LT(std::fabs(test.PartialCorrelation(names[a], names[b],
                                                      {names[c]})),
                    0.08)
              << names[a] << " _||_ " << names[b] << " | " << names[c];
        }
      }
      if (dag.DSeparated(names[a], names[b], {})) {
        EXPECT_LT(std::fabs(test.PartialCorrelation(names[a], names[b], {})),
                  0.08);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DSeparationPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace causumx
