// Tests for the embedded HTTP serving layer (src/server/): framing
// (incremental parsing at any byte boundary, typed parse errors), the
// transport (bounded admission queue shedding 503s, keep-alive
// connection reuse), and the REST surface over the ExplanationService —
// including the acceptance guarantee that a query answered over HTTP is
// bit-identical to the same query run directly, and that appends land
// safely while explains are in flight (this suite runs under TSan in
// CI).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "causal/discovery.h"
#include "core/causumx.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "server/http.h"
#include "server/http_server.h"
#include "server/rest_api.h"
#include "service/explanation_service.h"
#include "stream/monitor.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace causumx {
namespace {

// ---- framing ---------------------------------------------------------------

TEST(HttpParserTest, ParsesRequestFedByteByByte) {
  const std::string raw =
      "POST /v1/tables/my%20table/append?pretty=1&x=a+b HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"rows\":[]}";
  HttpRequestParser parser(1024);
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(parser.Consume(&raw[i], 1), HttpRequestParser::State::kNeedMore)
        << "completed early at byte " << i;
  }
  ASSERT_EQ(parser.Consume(&raw[raw.size() - 1], 1),
            HttpRequestParser::State::kDone);
  const HttpRequest& r = parser.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.path, "/v1/tables/my table/append");
  EXPECT_EQ(r.query.at("pretty"), "1");
  EXPECT_EQ(r.query.at("x"), "a b");
  EXPECT_EQ(r.Header("content-type"), "application/json");
  EXPECT_EQ(r.body, "{\"rows\":[]}");
  EXPECT_TRUE(r.keep_alive);
}

TEST(HttpParserTest, TypedParseErrors) {
  auto parse = [](const std::string& raw, size_t max_body = 1024) {
    HttpRequestParser parser(max_body);
    parser.Consume(raw.data(), raw.size());
    return parser;
  };

  EXPECT_EQ(parse("garbage\r\n\r\n").error_status(), 400);
  EXPECT_EQ(parse("GET / HTTP/2.0\r\n\r\n").error_status(), 505);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .error_status(),
            501);
  // Oversized declared body fails from the header alone — no body bytes.
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 64)
                .error_status(),
            413);
  HttpRequestParser tiny_headers(1024, 32);
  const std::string long_request =
      "GET /a/very/long/path/exceeding/the/cap HTTP/1.1\r\n\r\n";
  tiny_headers.Consume(long_request.data(), long_request.size());
  EXPECT_EQ(tiny_headers.error_status(), 431);
}

// Fuzz-harness property pinned as a unit test: obsolete header folding
// (a continuation line starting with SP/HTAB, RFC 7230 §3.2.4) is
// rejected with a 400 — the folded line has no colon — and the verdict
// is identical whether the request arrives whole or byte-by-byte.
TEST(HttpParserTest, ObsoleteHeaderFoldingIs400AtAnySplit) {
  const std::string raw =
      "GET /h HTTP/1.1\r\n"
      "X-Folded: first\r\n"
      "\tcontinued value\r\n"
      "\r\n";

  HttpRequestParser whole(1024);
  EXPECT_EQ(whole.Consume(raw.data(), raw.size()),
            HttpRequestParser::State::kError);
  EXPECT_EQ(whole.error_status(), 400);

  HttpRequestParser split(1024);
  HttpRequestParser::State st = HttpRequestParser::State::kNeedMore;
  for (char c : raw) {
    st = split.Consume(&c, 1);
    if (st != HttpRequestParser::State::kNeedMore) break;
  }
  EXPECT_EQ(st, HttpRequestParser::State::kError);
  EXPECT_EQ(split.error_status(), whole.error_status());

  // The space-folded variant is the same defect.
  const std::string space_folded =
      "GET /h HTTP/1.1\r\nA: b\r\n  c\r\n\r\n";
  HttpRequestParser sp(1024);
  EXPECT_EQ(sp.Consume(space_folded.data(), space_folded.size()),
            HttpRequestParser::State::kError);
  EXPECT_EQ(sp.error_status(), 400);
}

TEST(HttpParserTest, PipelinedRequestsParseAcrossReset) {
  const std::string raw =
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpRequestParser parser(1024);
  ASSERT_EQ(parser.Consume(raw.data(), raw.size()),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().path, "/first");
  EXPECT_TRUE(parser.HasBufferedData());
  parser.Reset();
  ASSERT_EQ(parser.state(), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().path, "/second");
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParserTest, ConnectionCloseHeaderDisablesKeepAlive) {
  const std::string raw = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpRequestParser parser(1024);
  ASSERT_EQ(parser.Consume(raw.data(), raw.size()),
            HttpRequestParser::State::kDone);
  EXPECT_FALSE(parser.request().keep_alive);
}

// ---- transport (generic handlers) ------------------------------------------

TEST(HttpServerTest, QueueFullShedsLoadWith503) {
  // A handler that blocks until released: fills the admission queue
  // deterministically without depending on query timing.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;  // workers are free; the *gate* must shed
  options.max_queue = 1;
  HttpServer server(
      [&](const HttpRequest&) {
        std::unique_lock<std::mutex> lock(mu);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        return HttpResponse::Json(200, "{\"slow\":true}");
      },
      options);
  server.Start();

  auto slow = std::async(std::launch::async, [&] {
    HttpClient client("127.0.0.1", server.port());
    return client.Request("GET", "/slow");
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // The queue (depth 1) is now full: the next request sheds immediately.
  HttpClient rejected("127.0.0.1", server.port());
  const HttpClient::Response r = rejected.Request("GET", "/fast");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"ok\":false"), std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(slow.get().status, 200);
  EXPECT_GE(server.counters().requests_rejected, 1u);
  server.Stop();
}

TEST(HttpServerTest, KeepAliveReusesOneConnection) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer server(
      [](const HttpRequest& r) {
        return HttpResponse::Json(200, "{\"path\":\"" + r.path + "\"}");
      },
      options);
  server.Start();

  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    const HttpClient::Response r =
        client.Request("GET", StrFormat("/req/%d", i));
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.headers.at("connection"), "keep-alive");
    EXPECT_TRUE(client.connected());
  }
  const HttpServerCounters c = server.counters();
  EXPECT_EQ(c.connections_accepted, 1u);
  EXPECT_EQ(c.requests_handled, 3u);
  server.Stop();
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  HttpServer server(
      [](const HttpRequest&) -> HttpResponse {
        throw std::runtime_error("boom");
      },
      options);
  server.Start();
  HttpClient client("127.0.0.1", server.port());
  const HttpClient::Response r = client.Request("GET", "/");
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("boom"), std::string::npos);
  server.Stop();
}

// ---- REST surface ----------------------------------------------------------

GeneratedDataset MakeData() {
  SyntheticOptions opt;
  opt.num_rows = 900;
  opt.num_treatment_attrs = 3;
  return MakeSyntheticDataset(opt);
}

// A service + REST server world shared by the endpoint tests.
struct ServerWorld {
  GeneratedDataset ds;
  ExplanationService service;
  HttpServer server;

  explicit ServerWorld(HttpServerOptions options = MakeOptions(),
                       ServiceOptions service_options = {})
      : ds(MakeData()),
        service(service_options),
        server(MakeRestHandler(service), options) {
    service.RegisterTable("synthetic",
                          std::make_shared<const Table>(ds.table.Clone()));
    server.Start();
  }
  ~ServerWorld() { server.Stop(); }

  static HttpServerOptions MakeOptions() {
    HttpServerOptions options;
    options.port = 0;
    options.num_threads = 4;
    return options;
  }

  /// The JSON body of an explain request mirroring the dataset's default
  /// query + test config, with the No-DAG strawman (the only DAG choice
  /// expressible without a file).
  std::string ExplainBody() const {
    JsonWriter w;
    w.BeginObject()
        .Key("table").String("synthetic")
        .Key("group_by").BeginArray();
    for (const auto& a : ds.default_query.group_by) w.String(a);
    w.EndArray()
        .Key("avg").String(ds.default_query.avg_attribute)
        .Key("discover").String("nodag")
        .Key("per_group_patterns").Bool(false)
        .Key("grouping_attrs").BeginArray();
    for (const auto& a : ds.grouping_attribute_hint) w.String(a);
    w.EndArray().Key("treatment_attrs").BeginArray();
    for (const auto& a : ds.treatment_attribute_hint) w.String(a);
    w.EndArray().EndObject();
    return w.str();
  }

  /// The reference summary for ExplainBody(), computed without any
  /// server: bit-identical by the determinism guarantee.
  std::string ReferenceSummaryJson() const {
    CauSumXConfig config;  // the executor's defaults for the body above
    config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
    config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
    config.grouping.include_per_group_patterns = false;
    config.num_threads = 1;
    const CausalDag dag =
        MakeNoDag(ds.table, ds.default_query.avg_attribute);
    const CauSumXResult direct =
        RunCauSumX(ds.table, ds.default_query, dag, config);
    return SummaryToJson(direct.summary, &ds.default_query);
  }
};

// One appendable row in schema order, as a JSON array ("fresh" into
// categorical columns, 1 into numeric ones).
std::string MakeRowJson(const Table& schema) {
  JsonWriter row;
  row.BeginArray();
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    if (schema.column(c).type() == ColumnType::kCategorical) {
      row.String("fresh");
    } else {
      row.Int(1);
    }
  }
  row.EndArray();
  return row.str();
}

// Extracts the exact "summary" JSON text from an explain response body
// (it is the final member when cache stats are off).
std::string ExtractSummary(const std::string& body) {
  const std::string marker = "\"summary\":";
  const size_t pos = body.find(marker);
  if (pos == std::string::npos || body.empty() || body.back() != '}') {
    return "";
  }
  return body.substr(pos + marker.size(),
                     body.size() - pos - marker.size() - 1);
}

TEST(RestApiTest, HealthzAndStatsAndTables) {
  ServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());

  const auto health = client.Request("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"status\":\"ok\"}");

  const auto tables = client.Request("GET", "/v1/tables");
  EXPECT_EQ(tables.status, 200);
  EXPECT_NE(tables.body.find("\"name\":\"synthetic\""), std::string::npos);

  const auto stats = client.Request("GET", "/v1/stats");
  EXPECT_EQ(stats.status, 200);
  const JsonValue parsed = JsonValue::Parse(stats.body);
  EXPECT_EQ(parsed.Find("service")->GetNumber("tables_registered", -1), 1);
  EXPECT_EQ(parsed.Find("tables")->AsArray().size(), 1u);
}

TEST(RestApiTest, ExplainIsBitIdenticalToDirectRun) {
  ServerWorld w;
  const std::string expected = w.ReferenceSummaryJson();

  HttpClient client("127.0.0.1", w.server.port());
  const auto r1 = client.Request("POST", "/v1/explain", w.ExplainBody());
  ASSERT_EQ(r1.status, 200);
  EXPECT_EQ(ExtractSummary(r1.body), expected);

  // Warm repeat over the same connection: still bit-identical.
  const auto r2 = client.Request("POST", "/v1/explain", w.ExplainBody());
  ASSERT_EQ(r2.status, 200);
  EXPECT_EQ(ExtractSummary(r2.body), expected);
}

TEST(RestApiTest, TypedErrorResponses) {
  ServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());

  EXPECT_EQ(client.Request("POST", "/v1/explain", "{not json").status, 400);
  EXPECT_EQ(client
                .Request("POST", "/v1/explain",
                         "{\"table\":\"nope\",\"group_by\":[\"G1\"],"
                         "\"avg\":\"O\"}")
                .status,
            404);
  // Registered table, bad query parameters.
  EXPECT_EQ(client
                .Request("POST", "/v1/explain",
                         "{\"table\":\"synthetic\",\"avg\":\"O\"}")
                .status,
            400);
  EXPECT_EQ(client.Request("GET", "/v1/nope").status, 404);
  EXPECT_EQ(client.Request("POST", "/healthz", "{}").status, 405);
  EXPECT_EQ(client
                .Request("POST", "/v1/tables/nope/append",
                         "{\"rows\":[]}")
                .status,
            404);
  // URL/body table mismatch.
  EXPECT_EQ(client
                .Request("POST", "/v1/tables/synthetic/append",
                         "{\"table\":\"other\",\"rows\":[]}")
                .status,
            400);
  // Append with neither rows nor csv.
  EXPECT_EQ(
      client.Request("POST", "/v1/tables/synthetic/append", "{}").status,
      400);
}

TEST(RestApiTest, OversizedBodyIs413) {
  HttpServerOptions options = ServerWorld::MakeOptions();
  options.max_body_bytes = 512;
  ServerWorld w(options);
  HttpClient client("127.0.0.1", w.server.port());
  const std::string big(2048, 'x');
  const auto r = client.Request("POST", "/v1/explain", big);
  EXPECT_EQ(r.status, 413);
  EXPECT_NE(r.body.find("\"ok\":false"), std::string::npos);
}

TEST(RestApiTest, AppendGrowsTableAndVersions) {
  ServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());
  const size_t base_rows = w.service.GetTable("synthetic")->NumRows();

  // One inline row in schema order (values coerced by column type).
  const std::string body =
      "{\"rows\":[" + MakeRowJson(*w.service.GetTable("synthetic")) + "]}";

  const auto r = client.Request("POST", "/v1/tables/synthetic/append", body);
  ASSERT_EQ(r.status, 200) << r.body;
  const JsonValue parsed = JsonValue::Parse(r.body);
  EXPECT_EQ(parsed.GetNumber("rows_appended", 0), 1);
  EXPECT_EQ(parsed.GetNumber("rows_total", 0),
            static_cast<double>(base_rows + 1));
  EXPECT_EQ(w.service.GetTable("synthetic")->NumRows(), base_rows + 1);
  EXPECT_EQ(w.service.TableVersion("synthetic"), 1u);
}

TEST(RestApiTest, BatchEndpointRunsJsonlWithAppendBarrier) {
  ServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());

  const std::string jsonl =
      "{\"id\":\"q1\"," + w.ExplainBody().substr(1) + "\n" +
      "{\"op\":\"append\",\"table\":\"synthetic\",\"rows\":[" +
      MakeRowJson(*w.service.GetTable("synthetic")) + "]}\n" +
      "{\"id\":\"q2\"," + w.ExplainBody().substr(1) + "\n";
  const auto r = client.Request("POST", "/v1/batch", jsonl,
                                "application/x-ndjson");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.headers.at("content-type"), "application/x-ndjson");

  const std::vector<std::string> lines = Split(Trim(r.body), '\n');
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  }
  // The barrier: q2 ran against the grown table.
  EXPECT_NE(lines[1].find("\"op\":\"append\""), std::string::npos);
  EXPECT_EQ(w.service.TableVersion("synthetic"), 1u);
}

// The acceptance scenario: concurrent explains and appends against one
// table over HTTP — appends must land atomically under copy-on-write
// snapshots while queries stream, with every response well-formed. Runs
// under TSan in CI.
TEST(RestApiTest, ConcurrentExplainAndAppendOnOneTable) {
  ServerWorld w;
  constexpr int kQueryThreads = 3;
  constexpr int kQueriesEach = 3;
  constexpr int kAppends = 4;

  const std::shared_ptr<const Table> schema =
      w.service.GetTable("synthetic");
  const std::string append_body =
      "{\"rows\":[" + MakeRowJson(*schema) + "]}";
  const size_t base_rows = schema->NumRows();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads + 1);
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", w.server.port());
      for (int i = 0; i < kQueriesEach; ++i) {
        const auto r = client.Request("POST", "/v1/explain", w.ExplainBody());
        if (r.status != 200 ||
            r.body.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    HttpClient client("127.0.0.1", w.server.port());
    for (int i = 0; i < kAppends; ++i) {
      const auto r =
          client.Request("POST", "/v1/tables/synthetic/append", append_body);
      if (r.status != 200) failures.fetch_add(1);
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(w.service.GetTable("synthetic")->NumRows(),
            base_rows + kAppends);
  EXPECT_EQ(w.service.TableVersion("synthetic"),
            static_cast<uint64_t>(kAppends));

  // After the dust settles: the grown table's answer over HTTP is
  // bit-identical to a from-scratch direct run on the final snapshot.
  CauSumXConfig config;
  config.grouping_attribute_allowlist = w.ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = w.ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  config.num_threads = 1;
  const std::shared_ptr<const Table> grown =
      w.service.GetTable("synthetic");
  const CausalDag dag =
      MakeNoDag(*grown, w.ds.default_query.avg_attribute);
  const CauSumXResult direct =
      RunCauSumX(*grown, w.ds.default_query, dag, config);

  HttpClient client("127.0.0.1", w.server.port());
  const auto r = client.Request("POST", "/v1/explain", w.ExplainBody());
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(ExtractSummary(r.body),
            SummaryToJson(direct.summary, &w.ds.default_query));
}

// ---- the monitor surface ---------------------------------------------------

// A server with the windowed-monitor registry mounted (the two-argument
// MakeRestHandler overload) over a small categorical/double table.
struct MonitorServerWorld {
  ExplanationService service;
  MonitorRegistry monitors;
  HttpServer server;

  MonitorServerWorld()
      : monitors(service),
        server(MakeRestHandler(service, monitors),
               ServerWorld::MakeOptions()) {
    Table t;
    t.AddColumn("grp", ColumnType::kCategorical);
    t.AddColumn("trt", ColumnType::kCategorical);
    t.AddColumn("val", ColumnType::kDouble);
    service.RegisterTable("t", std::make_shared<const Table>(std::move(t)));
    server.Start();
  }
  ~MonitorServerWorld() { server.Stop(); }

  /// A tumbling 20-row monitor spec over the registered table, loose
  /// enough that every window emits a summary.
  static std::string Spec() {
    return "{\"table\":\"t\",\"group_by\":[\"grp\"],\"avg\":\"val\","
           "\"dag_text\":\"trt -> val\\n\",\"grouping_attrs\":[\"grp\"],"
           "\"treatment_attrs\":[\"trt\"],\"alpha\":0.99,"
           "\"min_group_size\":3,\"support\":0.1,\"num_threads\":1,"
           "\"emit_summaries\":true,"
           "\"window\":{\"kind\":\"tumbling\",\"size_rows\":20}}";
  }

  /// One append body of `n` rows split across two groups, half treated.
  static std::string AppendBody(size_t n) {
    JsonWriter w;
    w.BeginObject().Key("rows").BeginArray();
    for (size_t i = 0; i < n; ++i) {
      w.BeginArray()
          .String(i % 2 == 0 ? "g1" : "g2")
          .String(i % 4 < 2 ? "hi" : "lo")
          .Double(i % 4 < 2 ? 9.0 + static_cast<double>(i % 3)
                            : 1.0 + static_cast<double>(i % 3))
          .EndArray();
    }
    w.EndArray().EndObject();
    return w.str();
  }
};

TEST(RestApiMonitorTest, CreateListGetDeleteLifecycle) {
  MonitorServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());

  const auto created =
      client.Request("POST", "/v1/monitors", MonitorServerWorld::Spec());
  ASSERT_EQ(created.status, 201);
  const JsonValue created_json = JsonValue::Parse(created.body);
  EXPECT_EQ(created_json.GetString("id", ""), "m1");
  EXPECT_EQ(created_json.Find("status")->GetNumber("rows_observed", -1), 0);

  const auto list = client.Request("GET", "/v1/monitors");
  ASSERT_EQ(list.status, 200);
  EXPECT_EQ(JsonValue::Parse(list.body).AsArray().size(), 1u);

  const auto got = client.Request("GET", "/v1/monitors/m1");
  ASSERT_EQ(got.status, 200);
  const JsonValue got_json = JsonValue::Parse(got.body);
  EXPECT_EQ(got_json.Find("status")->GetString("table", ""), "t");
  EXPECT_EQ(got_json.Find("spec")->GetString("avg", ""), "val");

  // Typed failures: unknown id, unregistered table, malformed spec,
  // wrong method.
  EXPECT_EQ(client.Request("GET", "/v1/monitors/nope").status, 404);
  EXPECT_EQ(client
                .Request("POST", "/v1/monitors",
                         "{\"table\":\"ghost\",\"group_by\":[\"g\"],"
                         "\"avg\":\"v\",\"window\":{\"size_rows\":5}}")
                .status,
            404);
  EXPECT_EQ(client.Request("POST", "/v1/monitors", "{no spec").status, 400);
  EXPECT_EQ(client.Request("PUT", "/v1/monitors").status, 405);

  EXPECT_EQ(client.Request("DELETE", "/v1/monitors/m1").status, 200);
  EXPECT_EQ(client.Request("DELETE", "/v1/monitors/m1").status, 404);
  const auto drained = client.Request("GET", "/v1/monitors");
  EXPECT_EQ(JsonValue::Parse(drained.body).AsArray().size(), 0u);
}

TEST(RestApiMonitorTest, AppendsDriveEventsAndLongPollOverHttp) {
  MonitorServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());

  const auto created =
      client.Request("POST", "/v1/monitors", MonitorServerWorld::Spec());
  ASSERT_EQ(created.status, 201);

  // Two appends of 20 rows = two tumbling windows = two summary events.
  for (int i = 0; i < 2; ++i) {
    const auto appended = client.Request(
        "POST", "/v1/tables/t/append", MonitorServerWorld::AppendBody(20));
    ASSERT_EQ(appended.status, 200);
  }

  const auto all = client.Request("GET", "/v1/monitors/m1/events");
  ASSERT_EQ(all.status, 200);
  const JsonValue all_json = JsonValue::Parse(all.body);
  ASSERT_EQ(all_json.Find("events")->AsArray().size(), 2u);
  EXPECT_EQ(all_json.Find("events")->AsArray()[0].GetNumber("seq", -1), 1);
  EXPECT_EQ(all_json.Find("events")->AsArray()[1].GetNumber("seq", -1), 2);
  EXPECT_EQ(all_json.GetNumber("next_since", -1), 2);

  // Tailing from next_since returns nothing new; from 1, just seq 2. A
  // long-poll with events already pending returns immediately.
  const auto tail =
      client.Request("GET", "/v1/monitors/m1/events?since=2");
  EXPECT_EQ(JsonValue::Parse(tail.body).Find("events")->AsArray().size(),
            0u);
  EXPECT_EQ(JsonValue::Parse(tail.body).GetNumber("next_since", -1), 2);
  const auto from_one =
      client.Request("GET", "/v1/monitors/m1/events?since=1");
  ASSERT_EQ(
      JsonValue::Parse(from_one.body).Find("events")->AsArray().size(), 1u);
  const auto polled = client.Request(
      "GET", "/v1/monitors/m1/events?since=1&timeout_ms=5000");
  ASSERT_EQ(polled.status, 200);
  EXPECT_EQ(JsonValue::Parse(polled.body).Find("events")->AsArray().size(),
            1u);

  EXPECT_EQ(
      client.Request("GET", "/v1/monitors/m1/events?since=banana").status,
      400);

  // The monitor status over HTTP reflects the stream.
  const auto got = client.Request("GET", "/v1/monitors/m1");
  const JsonValue status = *JsonValue::Parse(got.body).Find("status");
  EXPECT_EQ(status.GetNumber("rows_observed", -1), 40);
  EXPECT_EQ(status.GetNumber("windows_evaluated", -1), 2);
  EXPECT_EQ(status.GetNumber("last_seq", -1), 2);
}

TEST(RestApiMonitorTest, MonitorRoutesAbsentWithoutRegistry) {
  // The single-argument MakeRestHandler overload does not mount the
  // monitor surface: the routes 404 like any unknown path.
  ServerWorld w;
  HttpClient client("127.0.0.1", w.server.port());
  EXPECT_EQ(client.Request("GET", "/v1/monitors").status, 404);
  EXPECT_EQ(client
                .Request("POST", "/v1/monitors",
                         MonitorServerWorld::Spec())
                .status,
            404);
}

}  // namespace
}  // namespace causumx
