// Unit tests for the causal DAG: structure, reachability, d-separation,
// and backdoor adjustment sets (Section 3).

#include <gtest/gtest.h>

#include "causal/dag.h"

namespace causumx {
namespace {

// The Fig. 3 style DAG used across tests:
//   Age -> Education -> Role -> Salary
//   Age -> Salary, Education -> Salary, Country -> Salary, Gender -> Salary
CausalDag MakeSoDag() {
  CausalDag g;
  g.AddEdge("Age", "Education");
  g.AddEdge("Education", "Role");
  g.AddEdge("Role", "Salary");
  g.AddEdge("Age", "Salary");
  g.AddEdge("Education", "Salary");
  g.AddEdge("Country", "Salary");
  g.AddEdge("Gender", "Salary");
  return g;
}

TEST(DagTest, NodesAndEdges) {
  const CausalDag g = MakeSoDag();
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_EQ(g.NumEdges(), 7u);
  EXPECT_TRUE(g.HasEdge("Age", "Education"));
  EXPECT_FALSE(g.HasEdge("Education", "Age"));
  EXPECT_TRUE(g.HasNode("Salary"));
  EXPECT_FALSE(g.HasNode("Missing"));
}

TEST(DagTest, CycleRejected) {
  CausalDag g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  EXPECT_THROW(g.AddEdge("C", "A"), std::invalid_argument);
  EXPECT_THROW(g.AddEdge("A", "A"), std::invalid_argument);
}

TEST(DagTest, RemoveEdge) {
  CausalDag g = MakeSoDag();
  g.RemoveEdge("Age", "Salary");
  EXPECT_FALSE(g.HasEdge("Age", "Salary"));
  EXPECT_EQ(g.NumEdges(), 6u);
  // Now C -> A is legal after breaking the path... (no cycle here anyway)
  g.RemoveEdge("NotThere", "Salary");  // no-op, no throw
}

TEST(DagTest, AncestorsAndDescendants) {
  const CausalDag g = MakeSoDag();
  const auto anc = g.Ancestors("Salary");
  EXPECT_EQ(anc.size(), 5u);
  EXPECT_TRUE(anc.count("Age"));
  EXPECT_TRUE(anc.count("Country"));
  const auto desc = g.Descendants("Age");
  EXPECT_EQ(desc.size(), 3u);  // Education, Role, Salary
  EXPECT_TRUE(g.IsAncestor("Age", "Salary"));
  EXPECT_FALSE(g.IsAncestor("Salary", "Age"));
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  const CausalDag g = MakeSoDag();
  const auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), g.NumNodes());
  auto pos = [&order](const std::string& n) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == n) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("Age"), pos("Education"));
  EXPECT_LT(pos("Education"), pos("Role"));
  EXPECT_LT(pos("Role"), pos("Salary"));
}

TEST(DagTest, DSeparationChain) {
  CausalDag g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  EXPECT_FALSE(g.DSeparated("A", "C", {}));
  EXPECT_TRUE(g.DSeparated("A", "C", {"B"}));
}

TEST(DagTest, DSeparationFork) {
  CausalDag g;
  g.AddEdge("B", "A");
  g.AddEdge("B", "C");
  EXPECT_FALSE(g.DSeparated("A", "C", {}));
  EXPECT_TRUE(g.DSeparated("A", "C", {"B"}));
}

TEST(DagTest, DSeparationCollider) {
  CausalDag g;
  g.AddEdge("A", "B");
  g.AddEdge("C", "B");
  // Collider blocks marginally, opens when conditioned on.
  EXPECT_TRUE(g.DSeparated("A", "C", {}));
  EXPECT_FALSE(g.DSeparated("A", "C", {"B"}));
}

TEST(DagTest, DSeparationColliderDescendant) {
  CausalDag g;
  g.AddEdge("A", "B");
  g.AddEdge("C", "B");
  g.AddEdge("B", "D");
  // Conditioning on a collider's descendant also opens the path.
  EXPECT_FALSE(g.DSeparated("A", "C", {"D"}));
}

TEST(DagTest, DSeparationLargerGraph) {
  const CausalDag g = MakeSoDag();
  // Country and Gender are marginally independent (no connecting trail
  // except the collider at Salary).
  EXPECT_TRUE(g.DSeparated("Country", "Gender", {}));
  EXPECT_FALSE(g.DSeparated("Country", "Gender", {"Salary"}));
  // Role and Age are dependent through Education.
  EXPECT_FALSE(g.DSeparated("Role", "Age", {}));
  EXPECT_TRUE(g.DSeparated("Role", "Age", {"Education"}));
}

TEST(DagTest, BackdoorSetIsParentsOfTreatment) {
  const CausalDag g = MakeSoDag();
  const auto z = g.BackdoorAdjustmentSet({"Education"}, "Salary");
  ASSERT_EQ(z.size(), 1u);
  EXPECT_TRUE(z.count("Age"));
}

TEST(DagTest, BackdoorSetMultiAttributeTreatment) {
  const CausalDag g = MakeSoDag();
  const auto z = g.BackdoorAdjustmentSet({"Role", "Education"}, "Salary");
  // Parents(Role) = {Education}, Parents(Education) = {Age}; treatments
  // themselves are removed.
  ASSERT_EQ(z.size(), 1u);
  EXPECT_TRUE(z.count("Age"));
}

TEST(DagTest, BackdoorSetRootTreatmentIsEmpty) {
  const CausalDag g = MakeSoDag();
  EXPECT_TRUE(g.BackdoorAdjustmentSet({"Country"}, "Salary").empty());
}

TEST(DagTest, CausalAncestors) {
  const CausalDag g = MakeSoDag();
  const auto anc = g.CausalAncestorsOf("Salary");
  EXPECT_TRUE(anc.count("Role"));
  EXPECT_TRUE(anc.count("Gender"));
  EXPECT_FALSE(anc.count("Salary"));
}

TEST(DagTest, DensityAndDot) {
  const CausalDag g = MakeSoDag();
  EXPECT_NEAR(g.Density(), 7.0 / (6 * 5), 1e-12);
  const std::string dot = g.ToDot("T");
  EXPECT_NE(dot.find("digraph T"), std::string::npos);
  EXPECT_NE(dot.find("\"Age\" -> \"Education\""), std::string::npos);
}

TEST(DagTest, EdgeDifference) {
  CausalDag a, b;
  a.AddEdge("X", "Y");
  a.AddEdge("Y", "Z");
  b.AddEdge("X", "Y");
  b.AddEdge("Z", "Y");
  EXPECT_EQ(a.EdgeDifference(b, /*ignore_direction=*/false), 2u);
  EXPECT_EQ(a.EdgeDifference(b, /*ignore_direction=*/true), 0u);
  EXPECT_EQ(a.EdgeDifference(a), 0u);
}

}  // namespace
}  // namespace causumx
