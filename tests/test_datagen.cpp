// Tests for the dataset replicas: paper-scale shapes, FD structure,
// acyclic ground-truth DAGs, and planted-effect sanity (Table 3 and the
// case-study preconditions).

#include <gtest/gtest.h>

#include "datagen/accidents.h"
#include "datagen/adult.h"
#include "datagen/cps.h"
#include "datagen/german.h"
#include "datagen/registry.h"
#include "datagen/stackoverflow.h"
#include "datagen/synthetic.h"
#include "dataset/fd.h"
#include "dataset/group_query.h"

namespace causumx {
namespace {

TEST(DatagenTest, RegistryListsPaperDatasets) {
  const auto names = RegisteredDatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "German");
  EXPECT_EQ(names[4], "Accidents");
  EXPECT_THROW(MakeDatasetByName("nope"), std::out_of_range);
}

TEST(DatagenTest, RegistryScalesRowCounts) {
  const GeneratedDataset tiny = MakeDatasetByName("Adult", 0.01);
  EXPECT_NEAR(static_cast<double>(tiny.table.NumRows()), 325.0, 5.0);
}

TEST(DatagenTest, StackOverflowShapeMatchesPaper) {
  StackOverflowOptions opt;
  opt.num_rows = 5000;  // scaled for test speed
  const GeneratedDataset ds = MakeStackOverflowDataset(opt);
  EXPECT_EQ(ds.table.NumRows(), 5000u);
  EXPECT_EQ(ds.table.NumColumns(), 20u);  // Table 3: 20 attributes
  EXPECT_EQ(ds.table.column("Country").NumDistinct(), 20u);  // 20 countries
  EXPECT_EQ(ds.table.column("Continent").NumDistinct(), 5u);  // 5 continents
}

TEST(DatagenTest, StackOverflowFdsHold) {
  StackOverflowOptions opt;
  opt.num_rows = 4000;
  const GeneratedDataset ds = MakeStackOverflowDataset(opt);
  for (const char* attr : {"Continent", "HDI", "Gini", "GDP"}) {
    EXPECT_TRUE(HoldsFd(ds.table, {"Country"}, attr)) << attr;
  }
  EXPECT_FALSE(HoldsFd(ds.table, {"Country"}, "Age"));
}

TEST(DatagenTest, StackOverflowPlantedEffects) {
  StackOverflowOptions opt;
  opt.num_rows = 10000;
  const GeneratedDataset ds = MakeStackOverflowDataset(opt);
  const AggregateView view =
      AggregateView::Evaluate(ds.table, ds.default_query);
  EXPECT_EQ(view.NumGroups(), 20u);
  // The US must out-earn India on average (paper Fig. 1 shape).
  double us = 0, india = 0;
  for (const auto& g : view.groups()) {
    if (g.KeyString() == "United States") us = g.average;
    if (g.KeyString() == "India") india = g.average;
  }
  EXPECT_GT(us, 2.0 * india);
}

TEST(DatagenTest, StackOverflowDagAcyclicAndGrounded) {
  const GeneratedDataset ds = MakeStackOverflowDataset(
      StackOverflowOptions{.num_rows = 100, .seed = 1});
  EXPECT_NO_THROW(ds.dag.TopologicalOrder());
  EXPECT_EQ(ds.dag.NumNodes(), ds.table.NumColumns());
  EXPECT_TRUE(ds.dag.HasEdge("Role", "Salary"));
  EXPECT_TRUE(ds.dag.HasEdge("Age", "Education"));
}

TEST(DatagenTest, AdultShapeAndFd) {
  AdultOptions opt;
  opt.num_rows = 3000;
  const GeneratedDataset ds = MakeAdultDataset(opt);
  EXPECT_EQ(ds.table.NumColumns(), 13u);  // Table 3: 13 attributes
  EXPECT_TRUE(HoldsFd(ds.table, {"Occupation"}, "OccupationCategory"));
  // Binary outcome.
  for (const Value& v : ds.table.column("Income").DistinctValues()) {
    const double d = v.AsDouble();
    EXPECT_TRUE(d == 0.0 || d == 1.0);
  }
}

TEST(DatagenTest, AdultMarriageEffectPlanted) {
  AdultOptions opt;
  opt.num_rows = 20000;
  const GeneratedDataset ds = MakeAdultDataset(opt);
  // Married high-earner rate far above never-married (Fig. 19 story).
  const Column& marital = ds.table.column("MaritalStatus");
  const Column& income = ds.table.column("Income");
  double married_sum = 0, married_n = 0, single_sum = 0, single_n = 0;
  for (size_t r = 0; r < ds.table.NumRows(); ++r) {
    const std::string m = marital.GetValue(r).AsString();
    if (m == "Married") {
      // causumx-lint: allow(fp-accumulation) serial test oracle, fixed order
      married_sum += income.GetNumeric(r);
      ++married_n;
    } else if (m == "Never-married") {
      single_sum += income.GetNumeric(r);
      ++single_n;
    }
  }
  EXPECT_GT(married_sum / married_n, 2.0 * (single_sum / single_n));
}

TEST(DatagenTest, GermanShape) {
  const GeneratedDataset ds = MakeGermanDataset();
  EXPECT_EQ(ds.table.NumRows(), 1000u);   // Table 3: 1000 tuples
  EXPECT_EQ(ds.table.NumColumns(), 20u);  // Table 3: 20 attributes
  EXPECT_EQ(ds.table.column("Purpose").NumDistinct(), 10u);
  // No FDs from Purpose: every attribute varies within purposes.
  const AttributePartition part =
      PartitionAttributes(ds.table, {"Purpose"}, "RiskScore");
  EXPECT_TRUE(part.grouping_attributes.empty());
}

TEST(DatagenTest, GermanPlantedEffects) {
  GermanOptions opt;
  opt.num_rows = 5000;  // oversample for stable means
  const GeneratedDataset ds = MakeGermanDataset(opt);
  const Column& checking = ds.table.column("CheckingAccount");
  const Column& duration = ds.table.column("Duration");
  const Column& risk = ds.table.column("RiskScore");
  double rich_sum = 0, rich_n = 0, long_sum = 0, long_n = 0, all_sum = 0;
  for (size_t r = 0; r < ds.table.NumRows(); ++r) {
    const double y = risk.GetNumeric(r);
    all_sum += y;
    if (checking.GetValue(r).AsString() == "200+ DM") {
      // causumx-lint: allow(fp-accumulation) serial test oracle, as above
      rich_sum += y;
      ++rich_n;
    }
    if (duration.GetInt(r) > 48) {
      long_sum += y;
      ++long_n;
    }
  }
  const double base = all_sum / static_cast<double>(ds.table.NumRows());
  EXPECT_GT(rich_sum / rich_n, base + 0.1);   // checking 200+ raises risk
  EXPECT_LT(long_sum / long_n, base - 0.15);  // long duration lowers it
}

TEST(DatagenTest, AccidentsShapeAndFds) {
  AccidentsOptions opt;
  opt.num_rows = 5000;
  opt.num_cities = 32;
  const GeneratedDataset ds = MakeAccidentsDataset(opt);
  EXPECT_EQ(ds.table.NumColumns(), 41u);  // ~Table 3: 40 attributes + key
  EXPECT_TRUE(HoldsFd(ds.table, {"City"}, "Region"));
  EXPECT_TRUE(HoldsFd(ds.table, {"City"}, "State"));
  // Severity in [1, 4].
  const Column& sev = ds.table.column("Severity");
  for (size_t r = 0; r < ds.table.NumRows(); ++r) {
    EXPECT_GE(sev.GetNumeric(r), 1.0);
    EXPECT_LE(sev.GetNumeric(r), 4.0);
  }
}

TEST(DatagenTest, AccidentsCompactSchemaOption) {
  AccidentsOptions opt;
  opt.num_rows = 500;
  opt.full_schema = false;
  const GeneratedDataset ds = MakeAccidentsDataset(opt);
  EXPECT_EQ(ds.table.NumColumns(), 19u);
  EXPECT_NO_THROW(ds.dag.TopologicalOrder());
}

TEST(DatagenTest, AccidentsPlantedRegionalEffects) {
  AccidentsOptions opt;
  opt.num_rows = 40000;
  opt.num_cities = 32;
  const GeneratedDataset ds = MakeAccidentsDataset(opt);
  const Column& region = ds.table.column("Region");
  const Column& weather = ds.table.column("Weather");
  const Column& sev = ds.table.column("Severity");
  // Midwest snow accidents are more severe than midwest clear ones.
  double snow_sum = 0, snow_n = 0, clear_sum = 0, clear_n = 0;
  for (size_t r = 0; r < ds.table.NumRows(); ++r) {
    if (region.GetValue(r).AsString() != "Midwest") continue;
    const std::string w = weather.GetValue(r).AsString();
    if (w == "Snow") {
      // causumx-lint: allow(fp-accumulation) serial test oracle, as above
      snow_sum += sev.GetNumeric(r);
      ++snow_n;
    } else if (w == "Clear") {
      clear_sum += sev.GetNumeric(r);
      ++clear_n;
    }
  }
  ASSERT_GT(snow_n, 100.0);
  EXPECT_GT(snow_sum / snow_n, clear_sum / clear_n + 0.4);
}

TEST(DatagenTest, CpsShapeAndFd) {
  CpsOptions opt;
  opt.num_rows = 5000;
  const GeneratedDataset ds = MakeCpsDataset(opt);
  EXPECT_EQ(ds.table.NumColumns(), 10u);  // Table 3: 10 attributes
  EXPECT_TRUE(HoldsFd(ds.table, {"State"}, "Division"));
  EXPECT_NO_THROW(ds.dag.TopologicalOrder());
}

TEST(DatagenTest, SyntheticOutcomeEquation) {
  SyntheticOptions opt;
  opt.num_rows = 500;
  opt.num_treatment_attrs = 4;
  opt.noise_std = 0.0;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  // O = T1 - T2 + T3 - T4 exactly.
  for (size_t r = 0; r < ds.table.NumRows(); ++r) {
    const double expected = ds.table.column("T1").GetNumeric(r) -
                            ds.table.column("T2").GetNumeric(r) +
                            ds.table.column("T3").GetNumeric(r) -
                            ds.table.column("T4").GetNumeric(r);
    EXPECT_DOUBLE_EQ(ds.table.column("O").GetNumeric(r), expected);
  }
  // G unique per tuple.
  EXPECT_EQ(ds.table.column("G").NumDistinct(), ds.table.NumRows());
}

TEST(DatagenTest, SyntheticGroupingBucketsAreFds) {
  SyntheticOptions opt;
  opt.num_rows = 300;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  for (const auto& g : ds.grouping_attribute_hint) {
    EXPECT_TRUE(HoldsFd(ds.table, {"G"}, g)) << g;
  }
}

TEST(DatagenTest, GeneratorsDeterministicPerSeed) {
  const GeneratedDataset a =
      MakeAdultDataset(AdultOptions{.num_rows = 500, .seed = 77});
  const GeneratedDataset b =
      MakeAdultDataset(AdultOptions{.num_rows = 500, .seed = 77});
  for (size_t r = 0; r < 500; ++r) {
    EXPECT_TRUE(a.table.column("Income").GetNumeric(r) ==
                b.table.column("Income").GetNumeric(r));
    EXPECT_EQ(a.table.column("Occupation").GetCode(r),
              b.table.column("Occupation").GetCode(r));
  }
}

// Table 3 sanity sweep across all registered datasets (scaled down).
class DatasetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetSweep, BasicInvariants) {
  const GeneratedDataset ds = MakeDatasetByName(GetParam(), 0.02);
  EXPECT_GT(ds.table.NumRows(), 0u);
  EXPECT_GE(ds.table.NumColumns(), 5u);
  EXPECT_NO_THROW(ds.dag.TopologicalOrder());
  // Default query must evaluate to a non-empty view.
  const AggregateView view =
      AggregateView::Evaluate(ds.table, ds.default_query);
  EXPECT_GT(view.NumGroups(), 0u);
  // Every DAG node must reference a real column (no stale names).
  for (const auto& n : ds.dag.nodes()) {
    EXPECT_TRUE(ds.table.ColumnIndex(n).has_value()) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::Values("German", "Adult", "SO",
                                           "IMPUS-CPS", "Accidents",
                                           "Synthetic"));

}  // namespace
}  // namespace causumx
