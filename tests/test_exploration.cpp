// Tests for ExplorationSession (cached re-solving) and the top-k
// treatment drill-down, plus JSON export.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <type_traits>

#include "core/exploration.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "util/timer.h"

namespace causumx {
namespace {

GeneratedDataset MakeData() {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  opt.num_treatment_attrs = 4;
  return MakeSyntheticDataset(opt);
}

CauSumXConfig MakeConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

TEST(ExplorationTest, SolveMatchesRunCauSumX) {
  const GeneratedDataset ds = MakeData();
  CauSumXConfig config = MakeConfig(ds);
  config.k = 3;
  config.theta = 0.75;
  const CauSumXResult direct =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  ExplorationSession session(ds.table, ds.default_query, ds.dag, config);
  const ExplanationSummary summary = session.Solve();
  EXPECT_DOUBLE_EQ(summary.total_explainability,
                   direct.summary.total_explainability);
  EXPECT_EQ(summary.covered_groups, direct.summary.covered_groups);
}

TEST(ExplorationTest, ReSolveIsFastAndConsistent) {
  const GeneratedDataset ds = MakeData();
  ExplorationSession session(ds.table, ds.default_query, ds.dag,
                             MakeConfig(ds));
  session.Solve(3, 0.75);  // pays the mining cost

  Timer timer;
  for (size_t k = 1; k <= 4; ++k) {
    const ExplanationSummary s = session.Solve(k, 0.25);
    EXPECT_LE(s.explanations.size(), k);
  }
  // Re-solving 4 parameter settings must be much cheaper than mining
  // (mining this dataset takes tens of milliseconds; selection is sub-ms).
  EXPECT_LT(timer.Seconds(), 1.0);
}

TEST(ExplorationTest, MonotoneExplainabilityInK) {
  const GeneratedDataset ds = MakeData();
  ExplorationSession session(ds.table, ds.default_query, ds.dag,
                             MakeConfig(ds));
  double prev = -1;
  for (size_t k = 1; k <= 4; ++k) {
    const ExplanationSummary s =
        session.Solve(k, 0.25, FinalStepSolver::kExact);
    EXPECT_GE(s.total_explainability + 1e-9, prev);
    prev = s.total_explainability;
  }
}

TEST(ExplorationTest, TopTreatmentsRankedAndDeduped) {
  const GeneratedDataset ds = MakeData();
  ExplorationSession session(ds.table, ds.default_query, ds.dag,
                             MakeConfig(ds));
  const Pattern group({SimplePredicate("G1", CompareOp::kEq,
                                       Value("g1_b0"))});
  const auto top =
      session.TopTreatments(group, TreatmentSign::kPositive, 5);
  ASSERT_GE(top.size(), 2u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(std::fabs(top[i - 1].effect.cate),
              std::fabs(top[i].effect.cate));
  }
  for (const auto& t : top) {
    EXPECT_GT(t.effect.cate, 0);
    EXPECT_TRUE(t.effect.valid);
  }
  // Distinct treated sets.
  for (size_t i = 0; i < top.size(); ++i) {
    for (size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_FALSE(top[i].pattern == top[j].pattern);
    }
  }
}

TEST(ExplorationTest, SessionSharesTableOwnership) {
  // Regression: the session used to hold `const Table&`, so a table that
  // went away before the first Solve left a dangling reference. With
  // shared ownership, the session stays valid after the caller's handle
  // is gone.
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  const CauSumXResult direct =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);

  auto session = [&] {
    auto table = std::make_shared<const Table>(std::move(ds.table));
    ExplorationSession s(table, ds.default_query, ds.dag, config);
    // `table` (the only external handle) dies here.
    return s;
  }();
  const ExplanationSummary summary = session.Solve();
  EXPECT_DOUBLE_EQ(summary.total_explainability,
                   direct.summary.total_explainability);
  EXPECT_EQ(summary.covered_groups, direct.summary.covered_groups);

  // Passing a temporary table does not compile (deleted overload) —
  // the original footgun is now a compile-time error.
  static_assert(!std::is_constructible_v<ExplorationSession, Table&&,
                                         GroupByAvgQuery, CausalDag>,
                "temporary tables must be rejected");
}

TEST(ExplorationTest, TopTreatmentsEmptyGroupingMeansWholeTable) {
  const GeneratedDataset ds = MakeData();
  ExplorationSession session(ds.table, ds.default_query, ds.dag,
                             MakeConfig(ds));
  const auto top =
      session.TopTreatments(Pattern(), TreatmentSign::kNegative, 3);
  ASSERT_FALSE(top.empty());
  for (const auto& t : top) EXPECT_LT(t.effect.cate, 0);
}

TEST(JsonExportTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(JsonExportTest, PredicateAndPattern) {
  SimplePredicate p("Age", CompareOp::kLt, Value(int64_t{35}));
  EXPECT_EQ(PredicateToJson(p),
            "{\"attribute\":\"Age\",\"op\":\"<\",\"value\":35}");
  SimplePredicate s("Role", CompareOp::kEq, Value("QA \"lead\""));
  EXPECT_NE(PredicateToJson(s).find("QA \\\"lead\\\""), std::string::npos);
  const Pattern pat({p, s});
  const std::string json = PatternToJson(pat);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"Age\""), std::string::npos);
}

TEST(JsonExportTest, SummaryRoundTripStructure) {
  const GeneratedDataset ds = MakeData();
  CauSumXConfig config = MakeConfig(ds);
  config.k = 2;
  config.theta = 0.25;
  const ExplanationSummary summary =
      ExplainView(ds.table, ds.default_query, ds.dag, config);
  const std::string json = SummaryToJson(summary, &ds.default_query);

  // Structural sanity: balanced braces/brackets, key fields present.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"explanations\""), std::string::npos);
  EXPECT_NE(json.find("\"cate\""), std::string::npos);
  EXPECT_NE(json.find("\"ci95\""), std::string::npos);
}

TEST(JsonExportTest, EffectCarriesConfidenceInterval) {
  EffectEstimate e;
  e.valid = true;
  e.cate = 10.0;
  e.std_error = 1.0;
  e.p_value = 0.001;
  const std::string json = EffectToJson(e);
  EXPECT_NE(json.find("\"ci95\":[8.04"), std::string::npos);
}

}  // namespace
}  // namespace causumx
