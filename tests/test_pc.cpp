// Unit tests for the PC algorithm and the PDAG machinery.

#include <gtest/gtest.h>

#include "causal/pc.h"
#include "util/rng.h"

namespace causumx {
namespace {

TEST(PdagBuilderTest, AdjacencyAndOrientation) {
  PdagBuilder pdag({"A", "B", "C"});
  pdag.AddUndirected("A", "B");
  EXPECT_TRUE(pdag.Adjacent("A", "B"));
  EXPECT_TRUE(pdag.IsUndirected("A", "B"));
  pdag.Orient("A", "B");
  EXPECT_TRUE(pdag.IsOriented("A", "B"));
  EXPECT_FALSE(pdag.IsOriented("B", "A"));
  EXPECT_TRUE(pdag.Adjacent("A", "B"));
  // Orienting the reverse of an oriented edge is a no-op.
  pdag.Orient("B", "A");
  EXPECT_TRUE(pdag.IsOriented("A", "B"));
}

TEST(PdagBuilderTest, MeekRule1Propagates) {
  // C -> A, A - B, C not adjacent to B  =>  A -> B.
  PdagBuilder pdag({"A", "B", "C"});
  pdag.AddUndirected("C", "A");
  pdag.Orient("C", "A");
  pdag.AddUndirected("A", "B");
  pdag.ApplyMeekRules();
  EXPECT_TRUE(pdag.IsOriented("A", "B"));
}

TEST(PdagBuilderTest, ToDagBreaksTies) {
  PdagBuilder pdag({"A", "B"});
  pdag.AddUndirected("A", "B");
  const CausalDag dag = pdag.ToDag({"A", "B"});
  EXPECT_TRUE(dag.HasEdge("A", "B"));
  EXPECT_FALSE(dag.HasEdge("B", "A"));
}

// Chain X -> Z -> Y: PC must drop the X-Y edge.
TEST(PcTest, ChainSkeletonRecovered) {
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Z", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(1);
  for (size_t i = 0; i < 4000; ++i) {
    const double x = rng.NextGaussian();
    const double z = 1.5 * x + rng.NextGaussian();
    const double y = 1.5 * z + rng.NextGaussian();
    t.AddRow({Value(x), Value(z), Value(y)});
  }
  // Stricter alpha at n=4000, as standard for PC on large samples (the
  // default 0.05 admits ~5% false edge retentions by construction).
  const PcResult pc = RunPc(t, /*alpha=*/0.01);
  EXPECT_GT(pc.ci_tests_run, 0u);
  // Skeleton: X-Z and Z-Y adjacent, X-Y not.
  const bool xz = pc.dag.HasEdge("X", "Z") || pc.dag.HasEdge("Z", "X");
  const bool zy = pc.dag.HasEdge("Z", "Y") || pc.dag.HasEdge("Y", "Z");
  const bool xy = pc.dag.HasEdge("X", "Y") || pc.dag.HasEdge("Y", "X");
  EXPECT_TRUE(xz);
  EXPECT_TRUE(zy);
  EXPECT_FALSE(xy);
  // Separating set of (X, Y) must be {Z}.
  auto it = pc.sepsets.find({"X", "Y"});
  ASSERT_NE(it, pc.sepsets.end());
  EXPECT_TRUE(it->second.count("Z"));
}

// Collider X -> Z <- Y: PC must orient the v-structure.
TEST(PcTest, ColliderOriented) {
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  t.AddColumn("Z", ColumnType::kDouble);
  Rng rng(2);
  for (size_t i = 0; i < 6000; ++i) {
    const double x = rng.NextGaussian();
    const double y = rng.NextGaussian();
    const double z = x + y + 0.5 * rng.NextGaussian();
    t.AddRow({Value(x), Value(y), Value(z)});
  }
  const PcResult pc = RunPc(t);
  EXPECT_TRUE(pc.dag.HasEdge("X", "Z"));
  EXPECT_TRUE(pc.dag.HasEdge("Y", "Z"));
  EXPECT_FALSE(pc.dag.HasEdge("Z", "X"));
  EXPECT_FALSE(pc.dag.HasEdge("Z", "Y"));
}

TEST(PcTest, IndependentVariablesYieldSparseGraph) {
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  t.AddColumn("C", ColumnType::kDouble);
  Rng rng(3);
  for (size_t i = 0; i < 3000; ++i) {
    t.AddRow({Value(rng.NextGaussian()), Value(rng.NextGaussian()),
              Value(rng.NextGaussian())});
  }
  const PcResult pc = RunPc(t);
  EXPECT_LE(pc.dag.NumEdges(), 1u);  // allow one false positive at 5%
}

TEST(PcTest, OutputIsAlwaysAcyclic) {
  // Any output must topo-sort without throwing.
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  t.AddColumn("C", ColumnType::kDouble);
  t.AddColumn("D", ColumnType::kDouble);
  Rng rng(4);
  for (size_t i = 0; i < 2000; ++i) {
    const double a = rng.NextGaussian();
    const double b = a + rng.NextGaussian();
    const double c = a + b + rng.NextGaussian();
    const double d = c + rng.NextGaussian();
    t.AddRow({Value(a), Value(b), Value(c), Value(d)});
  }
  const PcResult pc = RunPc(t);
  EXPECT_NO_THROW(pc.dag.TopologicalOrder());
  EXPECT_EQ(pc.dag.NumNodes(), 4u);
}

}  // namespace
}  // namespace causumx
