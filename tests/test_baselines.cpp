// Tests for the comparison baselines: IDS, FRL, Explanation-Table,
// XInsight-style, and Brute-Force (Section 6.1 of the paper).

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/explanation_table.h"
#include "baselines/frl.h"
#include "baselines/ids.h"
#include "baselines/rule_mining.h"
#include "baselines/xinsight.h"
#include "core/causumx.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Binary-friendly world: Y = 1 mostly when flag = on; group attribute g
// splits the table into two groups with different base rates.
Table MakeRuleTable(size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("flag", ColumnType::kCategorical);
  t.AddColumn("other", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool grp = rng.NextBool(0.5);
    const bool flag = rng.NextBool(0.5);
    const bool other = rng.NextBool(0.5);
    const double p = flag ? 0.85 : 0.15;
    t.AddRow({Value(grp ? "g1" : "g2"), Value(flag ? "on" : "off"),
              Value(other ? "x" : "y"),
              Value(rng.NextBool(p) ? 1.0 : 0.0)});
  }
  return t;
}

TEST(RuleMiningTest, BinOutcomeAtMean) {
  Table t;
  t.AddColumn("Y", ColumnType::kDouble);
  for (double v : {1.0, 2.0, 3.0, 10.0}) t.AddRow({Value(v)});
  const BinnedOutcome binned = BinOutcomeAtMean(t, "Y");
  EXPECT_DOUBLE_EQ(binned.threshold, 4.0);
  EXPECT_EQ(binned.positives, 1u);
  EXPECT_EQ(binned.label[3], 1);
  EXPECT_EQ(binned.label[0], 0);
  EXPECT_EQ(binned.valid.Count(), 4u);
}

TEST(RuleMiningTest, CandidateRulesCarryStats) {
  const Table t = MakeRuleTable(2000, 1);
  const BinnedOutcome binned = BinOutcomeAtMean(t, "Y");
  RuleMiningOptions opt;
  opt.min_support = 0.1;
  const auto rules =
      MineCandidateRules(t, binned, {"g", "flag", "other"}, opt);
  ASSERT_FALSE(rules.empty());
  bool found_flag_on = false;
  for (const auto& r : rules) {
    EXPECT_EQ(r.support, r.rows.Count());
    EXPECT_LE(r.positives, r.support);
    if (r.pattern.ToString() == "flag = on") {
      found_flag_on = true;
      EXPECT_GT(r.PositiveRate(), 0.7);
    }
  }
  EXPECT_TRUE(found_flag_on);
}

TEST(IdsTest, FindsDiscriminativeRules) {
  const Table t = MakeRuleTable(3000, 2);
  IdsConfig config;
  config.max_rules = 3;
  const IdsResult result = RunIds(t, "Y", config);
  ASSERT_FALSE(result.rules.empty());
  EXPECT_LE(result.rules.size(), 3u);
  // The decision set must beat the majority-class baseline (~0.5 here).
  EXPECT_GT(result.accuracy, 0.7);
  // The flag rule should be in there.
  bool uses_flag = false;
  for (const auto& r : result.rules) {
    if (r.pattern.UsesAttribute("flag")) uses_flag = true;
    EXPECT_GE(r.confidence, 0.5);
  }
  EXPECT_TRUE(uses_flag);
}

TEST(FrlTest, ProbabilitiesFall) {
  const Table t = MakeRuleTable(3000, 3);
  FrlConfig config;
  config.max_rules = 4;
  const FrlResult result = RunFrl(t, "Y", config);
  ASSERT_FALSE(result.rules.empty());
  for (size_t i = 1; i < result.rules.size(); ++i) {
    EXPECT_LE(result.rules[i].probability,
              result.rules[i - 1].probability + 1e-12);
  }
  EXPECT_GT(result.accuracy, 0.7);
}

TEST(FrlTest, FirstRuleIsHighestRisk) {
  const Table t = MakeRuleTable(3000, 4);
  const FrlResult result = RunFrl(t, "Y", {});
  ASSERT_FALSE(result.rules.empty());
  EXPECT_GT(result.rules[0].probability, 0.75);
}

TEST(ExplanationTableTest, GainDecreasesAndKlShrinks) {
  const Table t = MakeRuleTable(3000, 5);
  ExplanationTableConfig config;
  config.max_patterns = 3;
  const ExplanationTableResult result =
      RunExplanationTable(t, "Y", config);
  ASSERT_FALSE(result.entries.empty());
  // First pick must be the informative flag attribute.
  EXPECT_TRUE(result.entries[0].pattern.UsesAttribute("flag"));
  for (const auto& e : result.entries) {
    EXPECT_GT(e.gain, 0.0);
  }
  EXPECT_GE(result.final_kl, 0.0);
}

TEST(ExplanationTableTest, GroupVariantRunsPerGroup) {
  const Table t = MakeRuleTable(2000, 6);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  const AggregateView view = AggregateView::Evaluate(t, q);
  const auto per_group = RunExplanationTableG(t, view, "Y", {});
  ASSERT_EQ(per_group.size(), 2u);
  EXPECT_TRUE(per_group[0].first == "g1" || per_group[0].first == "g2");
}

TEST(XInsightTest, AllPairsProcessed) {
  const Table t = MakeRuleTable(3000, 7);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  const AggregateView view = AggregateView::Evaluate(t, q);
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  dag.AddEdge("other", "Y");
  XInsightConfig config;
  config.estimator.min_group_size = 5;
  const XInsightResult result =
      RunXInsight(t, view, dag, {"flag", "other"}, config);
  EXPECT_EQ(result.pairs_total, 1u);
  EXPECT_EQ(result.pairs_processed, 1u);
  EXPECT_FALSE(result.truncated);
  ASSERT_FALSE(result.explanations.empty());
  EXPECT_GT(result.output_bytes, 0u);
}

TEST(XInsightTest, PairCapTruncates) {
  // Four groups -> 6 pairs; cap at 2.
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("flag", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(8);
  for (size_t i = 0; i < 2000; ++i) {
    const int grp = static_cast<int>(i % 4);
    const bool flag = rng.NextBool(0.5);
    t.AddRow({Value("g" + std::to_string(grp)),
              Value(flag ? "on" : "off"),
              Value((flag ? 1.0 : 0.0) + rng.NextGaussian(0, 0.3))});
  }
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  const AggregateView view = AggregateView::Evaluate(t, q);
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  XInsightConfig config;
  config.max_pairs = 2;
  config.estimator.min_group_size = 5;
  const XInsightResult result = RunXInsight(t, view, dag, {"flag"}, config);
  EXPECT_EQ(result.pairs_total, 6u);
  EXPECT_EQ(result.pairs_processed, 2u);
  EXPECT_TRUE(result.truncated);
}

TEST(BruteForceTest, FindsExplanationsOnSmallData) {
  const Table t = MakeRuleTable(1500, 9);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  dag.AddEdge("other", "Y");
  BruteForceConfig config;
  config.k = 2;
  config.theta = 1.0;
  config.estimator.min_group_size = 5;
  const BruteForceResult result = RunBruteForce(t, q, dag, config);
  EXPECT_GT(result.grouping_patterns_enumerated, 0u);
  EXPECT_GT(result.cate_evaluations, 0u);
  ASSERT_FALSE(result.summary.explanations.empty());
  // The strongest treatment must involve the flag.
  bool uses_flag = false;
  for (const auto& e : result.summary.explanations) {
    if (e.positive && e.positive->pattern.UsesAttribute("flag")) {
      uses_flag = true;
    }
  }
  EXPECT_TRUE(uses_flag);
}

TEST(BruteForceTest, DominatesCauSumXInObjective) {
  // On a small instance the exhaustive optimum must be at least the
  // heuristic's objective (the Fig. 8(b) relationship).
  const Table t = MakeRuleTable(1500, 10);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  dag.AddEdge("other", "Y");

  BruteForceConfig bf_config;
  bf_config.k = 2;
  bf_config.theta = 1.0;
  bf_config.estimator.min_group_size = 5;
  const BruteForceResult bf = RunBruteForce(t, q, dag, bf_config);

  CauSumXConfig cx_config;
  cx_config.k = 2;
  cx_config.theta = 1.0;
  cx_config.estimator.min_group_size = 5;
  const CauSumXResult cx = RunCauSumX(t, q, dag, cx_config);

  if (bf.summary.coverage_satisfied && cx.summary.coverage_satisfied) {
    EXPECT_GE(bf.summary.total_explainability + 1e-6,
              cx.summary.total_explainability);
  }
}

TEST(BruteForceTest, EvaluationCapHonored) {
  const Table t = MakeRuleTable(1000, 11);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  dag.AddEdge("other", "Y");
  BruteForceConfig config;
  config.max_cate_evaluations = 3;
  config.num_threads = 1;
  const BruteForceResult result = RunBruteForce(t, q, dag, config);
  EXPECT_TRUE(result.hit_evaluation_cap);
  EXPECT_LE(result.cate_evaluations, 4u);
}

TEST(BruteForceTest, LpRoundingVariantRuns) {
  const Table t = MakeRuleTable(1200, 12);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "Y";
  CausalDag dag;
  dag.AddEdge("flag", "Y");
  dag.AddEdge("other", "Y");
  BruteForceConfig config;
  config.use_lp_rounding = true;
  config.k = 2;
  config.theta = 0.5;
  config.estimator.min_group_size = 5;
  const BruteForceResult result = RunBruteForce(t, q, dag, config);
  EXPECT_FALSE(result.summary.explanations.empty());
}

}  // namespace
}  // namespace causumx
