// Unit tests for the explanation-selection problem (Fig. 5) and its
// LP-rounding / exact / greedy solvers.

#include <gtest/gtest.h>

#include "lp/rounding.h"

namespace causumx {
namespace {

Bitset Cover(size_t universe, std::initializer_list<size_t> bits) {
  Bitset b(universe);
  for (size_t i : bits) b.Set(i);
  return b;
}

// Four groups; three candidates with varying weight and coverage.
SelectionProblem MakeProblem() {
  SelectionProblem p;
  p.num_groups = 4;
  p.k = 2;
  p.theta = 0.75;  // need 3 of 4 groups
  p.candidates = {
      {10.0, Cover(4, {0, 1})},
      {8.0, Cover(4, {2, 3})},
      {1.0, Cover(4, {0, 1, 2})},
  };
  return p;
}

TEST(RoundingTest, RequiredCoverageCeiling) {
  SelectionProblem p;
  p.num_groups = 10;
  p.theta = 0.75;
  EXPECT_EQ(p.RequiredCoverage(), 8u);
  p.theta = 1.0;
  EXPECT_EQ(p.RequiredCoverage(), 10u);
  p.theta = 0.0;
  EXPECT_EQ(p.RequiredCoverage(), 0u);
}

TEST(RoundingTest, ExactFindsOptimum) {
  const SelectionProblem p = MakeProblem();
  const SelectionResult r = SolveExact(p);
  ASSERT_TRUE(r.feasible);
  // Best feasible: candidates 0 + 1 (weight 18, coverage 4).
  EXPECT_NEAR(r.total_weight, 18.0, 1e-9);
  EXPECT_EQ(r.covered_groups, 4u);
}

TEST(RoundingTest, LpRoundingFindsFeasibleNearOptimal) {
  const SelectionProblem p = MakeProblem();
  const SelectionResult r = SolveByLpRounding(p, 128, 42);
  ASSERT_TRUE(r.lp_feasible);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.covered_groups, 3u);
  // With 128 rounds on a 3-candidate instance, the optimum is found.
  EXPECT_NEAR(r.total_weight, 18.0, 1e-9);
  // LP bound dominates any integral solution.
  EXPECT_GE(r.lp_objective + 1e-6, r.total_weight);
}

TEST(RoundingTest, InfeasibleThetaReported) {
  SelectionProblem p = MakeProblem();
  p.k = 1;
  p.theta = 1.0;  // no single candidate covers all 4 groups
  const SelectionResult exact = SolveExact(p);
  EXPECT_FALSE(exact.feasible);
  const SelectionResult rounded = SolveByLpRounding(p, 32, 7);
  EXPECT_FALSE(rounded.feasible);
}

TEST(RoundingTest, EmptyCandidatesTrivial) {
  SelectionProblem p;
  p.num_groups = 0;
  p.k = 3;
  p.theta = 1.0;
  EXPECT_TRUE(SolveByLpRounding(p).feasible);
  p.num_groups = 2;
  EXPECT_FALSE(SolveByLpRounding(p).feasible);
}

TEST(RoundingTest, SizeConstraintRespected) {
  SelectionProblem p;
  p.num_groups = 6;
  p.k = 2;
  p.theta = 0.5;
  for (size_t j = 0; j < 6; ++j) {
    p.candidates.push_back({1.0 + j, Cover(6, {j})});
  }
  // Need 3 groups with only 2 patterns covering 1 each: infeasible; the
  // solvers must not exceed k trying.
  const SelectionResult exact = SolveExact(p);
  EXPECT_LE(exact.selected.size(), 2u);
  EXPECT_FALSE(exact.feasible);
}

TEST(RoundingTest, GreedyPrefersWeight) {
  const SelectionProblem p = MakeProblem();
  const SelectionResult r = SolveGreedy(p);
  ASSERT_EQ(r.selected.size(), 2u);
  // Greedy by pure weight takes 10 then 8 -> happens to be optimal here.
  EXPECT_NEAR(r.total_weight, 18.0, 1e-9);
  EXPECT_TRUE(r.feasible);
}

TEST(RoundingTest, GreedyCanMissCoverage) {
  // Craft an instance where weight-greedy fails the coverage constraint
  // but the exact solver satisfies it — the paper's Fig. 9 phenomenon.
  SelectionProblem p;
  p.num_groups = 4;
  p.k = 2;
  p.theta = 1.0;
  p.candidates = {
      {100.0, Cover(4, {0})},
      {99.0, Cover(4, {1})},
      {10.0, Cover(4, {0, 1})},
      {9.0, Cover(4, {2, 3})},
  };
  const SelectionResult greedy = SolveGreedy(p);
  EXPECT_FALSE(greedy.feasible);  // picks 100 + 99, covers only 2
  const SelectionResult exact = SolveExact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.covered_groups, 4u);
  EXPECT_NEAR(exact.total_weight, 19.0, 1e-9);
}

TEST(RoundingTest, GreedyGainBonusHelpsCoverage) {
  SelectionProblem p;
  p.num_groups = 4;
  p.k = 2;
  p.theta = 1.0;
  p.candidates = {
      {100.0, Cover(4, {0})},
      {99.0, Cover(4, {1})},
      {10.0, Cover(4, {0, 1})},
      {9.0, Cover(4, {2, 3})},
  };
  // A large coverage bonus flips greedy into a coverage-first strategy.
  const SelectionResult r = SolveGreedy(p, /*gain_bonus=*/1000.0);
  EXPECT_TRUE(r.feasible);
}

TEST(RoundingTest, IncomparabilityViaGreedyDedup) {
  // Two candidates with identical coverage: greedy must not take both.
  SelectionProblem p;
  p.num_groups = 2;
  p.k = 2;
  p.theta = 0.5;
  p.candidates = {
      {5.0, Cover(2, {0})},
      {4.0, Cover(2, {0})},
      {3.0, Cover(2, {1})},
  };
  const SelectionResult r = SolveGreedy(p);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_NEAR(r.total_weight, 8.0, 1e-9);  // 5 + 3, not 5 + 4
}

TEST(RoundingTest, GreedyDedupSurvivesHashCollisions) {
  // Two DISTINCT coverages engineered to share one Bitset::Hash() value:
  // the greedy incomparability dedup must compare bit content on the
  // bucket hit and keep both candidates. (Hash-only dedup silently
  // skipped the second candidate — the MineTopKTreatments bug class.)
  //
  // Construction mirrors the FNV-1a fold in Bitset::Hash over a two-word
  // (128-group) universe: with word1' = word1 ^ delta, choosing
  // word2' = A' ^ A ^ word2 (A = (h0 ^ word1) * prime, A' likewise for
  // word1') makes the folded state — and hence the final hash — equal.
  constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  const uint64_t w1 = 0x3, w2 = 0x5;  // groups {0,1} and {64,66}
  const uint64_t w1p = 0xC;           // groups {2,3}
  const uint64_t a = (kFnvOffset ^ w1) * kFnvPrime;
  const uint64_t ap = (kFnvOffset ^ w1p) * kFnvPrime;
  const uint64_t w2p = ap ^ a ^ w2;

  auto from_words = [](uint64_t lo, uint64_t hi) {
    Bitset b(128);
    for (int i = 0; i < 64; ++i) {
      if ((lo >> i) & 1) b.Set(i);
      if ((hi >> i) & 1) b.Set(64 + i);
    }
    return b;
  };
  const Bitset cov_a = from_words(w1, w2);
  const Bitset cov_b = from_words(w1p, w2p);
  ASSERT_EQ(cov_a.Hash(), cov_b.Hash());  // genuine 64-bit collision
  ASSERT_FALSE(cov_a == cov_b);

  SelectionProblem p;
  p.num_groups = 128;
  p.k = 2;
  p.theta = 0.0;
  p.candidates = {{10.0, cov_a}, {9.0, cov_b}};
  const SelectionResult r = SolveGreedy(p);
  ASSERT_EQ(r.selected.size(), 2u) << "distinct coverage skipped on a "
                                      "hash collision";
  EXPECT_NEAR(r.total_weight, 19.0, 1e-9);

  // A genuinely identical coverage is still rejected (the
  // incomparability constraint the dedup exists for).
  p.candidates.push_back({8.0, cov_a});
  p.k = 3;
  const SelectionResult r2 = SolveGreedy(p);
  EXPECT_EQ(r2.selected, (std::vector<size_t>{0, 1}));
}

TEST(RoundingTest, ThetaZeroIsFeasibleForAllSolvers) {
  // Degenerate coverage demand: theta = 0 requires no groups, so any
  // selection — including one driven purely by weight — is feasible.
  SelectionProblem p = MakeProblem();
  p.theta = 0.0;
  ASSERT_EQ(p.RequiredCoverage(), 0u);
  const SelectionResult exact = SolveExact(p);
  const SelectionResult rounded = SolveByLpRounding(p, 32, 5);
  const SelectionResult greedy = SolveGreedy(p);
  for (const SelectionResult* r : {&exact, &rounded, &greedy}) {
    EXPECT_TRUE(r->feasible);
    EXPECT_LE(r->selected.size(), p.k);
  }
  // Weight is unconstrained by coverage: exact takes the top-2 weights.
  EXPECT_NEAR(exact.total_weight, 18.0, 1e-9);
}

TEST(RoundingTest, AllZeroWeightsAreDeterministicAndFeasible) {
  // Zero-weight candidates zero out the LP objective; whatever vertex
  // the simplex returns, the rounding draws — including the
  // Rng::NextWeighted all-zero fallback to the last index when every
  // sampling weight is zero (covered directly in test_rng) — must yield
  // a deterministic, feasible, within-k selection rather than a crash or
  // an unstable pick.
  SelectionProblem p;
  p.num_groups = 4;
  p.k = 2;
  p.theta = 0.0;
  p.candidates = {
      {0.0, Cover(4, {0})}, {0.0, Cover(4, {1})}, {0.0, Cover(4, {2})}};
  const SelectionResult r = SolveByLpRounding(p, 8, 11);
  ASSERT_TRUE(r.lp_feasible);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.selected.size(), p.k);
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
  const SelectionResult again = SolveByLpRounding(p, 8, 11);
  EXPECT_EQ(r.selected, again.selected);

  // Greedy on all-zero weights: scores tie at 0; the first
  // strictly-better scan keeps the lowest index each step.
  const SelectionResult g = SolveGreedy(p);
  EXPECT_EQ(g.selected, (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(g.feasible);

  // k = 0 is the fully degenerate corner: zero draws, empty selection,
  // feasible exactly because theta = 0 demands nothing.
  p.k = 0;
  const SelectionResult none = SolveByLpRounding(p, 8, 11);
  EXPECT_TRUE(none.feasible);
  EXPECT_TRUE(none.selected.empty());
}

TEST(RoundingTest, KLargerThanCandidateCount) {
  // k exceeding the candidate pool must select at most every candidate
  // once (rounding draws with replacement dedup; greedy stops early).
  SelectionProblem p;
  p.num_groups = 4;
  p.k = 5;
  p.theta = 1.0;
  p.candidates = {{3.0, Cover(4, {0, 1})}, {2.0, Cover(4, {2, 3})}};
  const SelectionResult exact = SolveExact(p);
  const SelectionResult rounded = SolveByLpRounding(p, 64, 3);
  const SelectionResult greedy = SolveGreedy(p, /*gain_bonus=*/1.0);
  for (const SelectionResult* r : {&exact, &rounded, &greedy}) {
    ASSERT_TRUE(r->feasible);
    EXPECT_EQ(r->selected, (std::vector<size_t>{0, 1}));
    EXPECT_EQ(r->covered_groups, 4u);
    EXPECT_NEAR(r->total_weight, 5.0, 1e-9);
  }
}

TEST(RoundingTest, ReducedLpMatchesFullLpOptimum) {
  const SelectionProblem p = MakeProblem();
  const LpSolution full = SolveLp(p.BuildLp());
  std::vector<size_t> counts;
  const LpSolution reduced = SolveLp(p.BuildReducedLp(&counts));
  ASSERT_EQ(full.status, LpStatus::kOptimal);
  ASSERT_EQ(reduced.status, LpStatus::kOptimal);
  EXPECT_NEAR(full.objective_value, reduced.objective_value, 1e-6);
  // Signature counts must total the coverable groups.
  size_t total = 0;
  for (size_t c : counts) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(RoundingTest, DeterministicGivenSeed) {
  const SelectionProblem p = MakeProblem();
  const SelectionResult a = SolveByLpRounding(p, 16, 99);
  const SelectionResult b = SolveByLpRounding(p, 16, 99);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
}

// Property sweep: on random instances, exact >= rounding >= greedy-feasible
// in weight among feasible results, and all respect the constraints.
class RoundingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundingPropertyTest, SolverOrderingHolds) {
  const int seed = GetParam();
  SelectionProblem p;
  p.num_groups = 8;
  p.k = 3;
  p.theta = 0.5;
  // Deterministic pseudo-random candidates from the seed.
  for (size_t j = 0; j < 7; ++j) {
    Bitset cov(8);
    for (size_t g = 0; g < 8; ++g) {
      if (((seed * 31 + j * 17 + g * 7) % 5) < 2) cov.Set(g);
    }
    if (cov.None()) cov.Set(j % 8);
    p.candidates.push_back(
        {1.0 + ((seed * 13 + j * 29) % 20), std::move(cov)});
  }
  const SelectionResult exact = SolveExact(p);
  const SelectionResult rounded = SolveByLpRounding(p, 64, seed);
  const SelectionResult greedy = SolveGreedy(p);

  for (const SelectionResult* r : {&exact, &rounded, &greedy}) {
    EXPECT_LE(r->selected.size(), p.k);
    if (r->feasible) {
      EXPECT_GE(r->covered_groups, p.RequiredCoverage());
    }
  }
  if (exact.feasible && rounded.feasible) {
    EXPECT_GE(exact.total_weight + 1e-9, rounded.total_weight);
  }
  if (exact.feasible) {
    // The LP bound dominates the exact integral optimum.
    EXPECT_GE(rounded.lp_objective + 1e-6, exact.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RoundingPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace causumx
