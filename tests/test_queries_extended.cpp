// End-to-end coverage of the query surface the paper defines but its
// experiments exercise lightly: WHERE predicates (phi) and composite
// group-by keys, plus the renderer's CI/top-k additions.

#include <gtest/gtest.h>

#include "core/causumx.h"
#include "core/exploration.h"
#include "core/renderer.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Two regions x two segments; treatment effect exists only for rows
// passing the WHERE filter (status = active).
Table MakeTable(size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("region", ColumnType::kCategorical);
  t.AddColumn("segment", ColumnType::kCategorical);
  t.AddColumn("status", ColumnType::kCategorical);
  t.AddColumn("promo", ColumnType::kCategorical);
  t.AddColumn("revenue", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool east = rng.NextBool(0.5);
    const bool premium = rng.NextBool(0.5);
    const bool active = rng.NextBool(0.7);
    const bool promo = rng.NextBool(0.5);
    double revenue = 100.0 + (premium ? 40.0 : 0.0) + rng.NextGaussian(0, 5);
    if (active && promo) revenue += 25.0;   // effect only when active
    if (!active) revenue *= 0.2;            // inactive rows are noise
    t.AddRow({Value(east ? "east" : "west"),
              Value(premium ? "premium" : "basic"),
              Value(active ? "active" : "inactive"),
              Value(promo ? "yes" : "no"), Value(revenue)});
  }
  return t;
}

CausalDag MakeDag() {
  CausalDag g;
  g.AddEdge("promo", "revenue");
  g.AddEdge("segment", "revenue");
  g.AddEdge("status", "revenue");
  return g;
}

TEST(ExtendedQueryTest, WherePredicateScopesTheAnalysis) {
  const Table t = MakeTable(6000, 1);
  GroupByAvgQuery q;
  q.group_by = {"region"};
  q.avg_attribute = "revenue";
  q.where = Pattern(
      {SimplePredicate("status", CompareOp::kEq, Value("active"))});

  const AggregateView view = AggregateView::Evaluate(t, q);
  ASSERT_EQ(view.NumGroups(), 2u);
  // Only active rows contribute.
  for (const auto& g : view.groups()) {
    EXPECT_GT(g.average, 80.0);
  }

  CauSumXConfig config;
  config.k = 2;
  config.theta = 1.0;
  const CauSumXResult r = RunCauSumX(t, q, MakeDag(), config);
  ASSERT_FALSE(r.summary.explanations.empty());
  // Note: per the paper, WHERE reduces the view; treatment effects are
  // still estimated on the full relation's subpopulations selected by
  // grouping patterns. The promo effect is detectable among the actives.
  bool promo_found = false;
  for (const auto& e : r.summary.explanations) {
    if (e.positive && e.positive->pattern.UsesAttribute("promo")) {
      promo_found = true;
    }
  }
  EXPECT_TRUE(promo_found);
}

TEST(ExtendedQueryTest, CompositeGroupByEndToEnd) {
  const Table t = MakeTable(6000, 2);
  GroupByAvgQuery q;
  q.group_by = {"region", "segment"};
  q.avg_attribute = "revenue";
  const AggregateView view = AggregateView::Evaluate(t, q);
  EXPECT_EQ(view.NumGroups(), 4u);

  CauSumXConfig config;
  config.k = 4;
  config.theta = 0.5;
  const CauSumXResult r = RunCauSumX(t, q, MakeDag(), config);
  EXPECT_GT(r.summary.num_groups, 0u);
  // Per-group fallback patterns only exist for single group-by keys; the
  // run must still work through mined patterns or report empty cleanly.
  for (const auto& e : r.summary.explanations) {
    EXPECT_GT(e.Weight(), 0.0);
  }
}

TEST(ExtendedQueryTest, RenderEffectWithCiFormat) {
  EffectEstimate e;
  e.valid = true;
  e.cate = 36000;
  e.std_error = 2000;
  e.p_value = 0.0004;
  const std::string text = RenderEffectWithCi(e);
  EXPECT_NE(text.find("36K"), std::string::npos);
  EXPECT_NE(text.find("p < 1e-3"), std::string::npos);
  EXPECT_NE(text.find("["), std::string::npos);
}

TEST(ExtendedQueryTest, RenderTreatmentListNumbered) {
  const Table t = MakeTable(4000, 3);
  GroupByAvgQuery q;
  q.group_by = {"region"};
  q.avg_attribute = "revenue";
  ExplorationSession session(t, q, MakeDag(), {});
  const auto top =
      session.TopTreatments(Pattern(), TreatmentSign::kPositive, 3);
  ASSERT_FALSE(top.empty());
  const std::string text = RenderTreatmentList(top, RenderStyle{});
  EXPECT_NE(text.find(" 1. "), std::string::npos);
  EXPECT_NE(text.find("effect"), std::string::npos);
}

}  // namespace
}  // namespace causumx
