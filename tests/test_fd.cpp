// Unit tests for functional-dependency detection and the grouping /
// treatment attribute partition (Section 4.1).

#include <gtest/gtest.h>

#include "dataset/fd.h"

namespace causumx {
namespace {

Table MakeTable() {
  Table t;
  t.AddColumn("country", ColumnType::kCategorical);
  t.AddColumn("continent", ColumnType::kCategorical);  // FD country ->
  t.AddColumn("gdp", ColumnType::kCategorical);        // FD country ->
  t.AddColumn("age", ColumnType::kInt64);              // no FD
  t.AddColumn("salary", ColumnType::kDouble);
  t.AddRow({Value("US"), Value("NA"), Value("High"), Value(int64_t{30}),
            Value(1.0)});
  t.AddRow({Value("US"), Value("NA"), Value("High"), Value(int64_t{40}),
            Value(2.0)});
  t.AddRow({Value("FR"), Value("EU"), Value("High"), Value(int64_t{35}),
            Value(3.0)});
  t.AddRow({Value("IN"), Value("AS"), Value("Low"), Value(int64_t{28}),
            Value(4.0)});
  // Second North-American country so that continent -/-> country.
  t.AddRow({Value("CA"), Value("NA"), Value("High"), Value(int64_t{33}),
            Value(5.0)});
  return t;
}

TEST(FdTest, HoldsForDeterminedAttributes) {
  const Table t = MakeTable();
  EXPECT_TRUE(HoldsFd(t, {"country"}, "continent"));
  EXPECT_TRUE(HoldsFd(t, {"country"}, "gdp"));
}

TEST(FdTest, FailsForVaryingAttributes) {
  const Table t = MakeTable();
  EXPECT_FALSE(HoldsFd(t, {"country"}, "age"));
  EXPECT_FALSE(HoldsFd(t, {"continent"}, "country"));  // NA -> {US, CA}
}

TEST(FdTest, ContinentDoesNotDetermineGdp) {
  Table t = MakeTable();
  // Add a second EU country with Low gdp to break continent -> gdp.
  t.AddRow({Value("PL"), Value("EU"), Value("Low"), Value(int64_t{30}),
            Value(5.0)});
  EXPECT_FALSE(HoldsFd(t, {"continent"}, "gdp"));
  EXPECT_TRUE(HoldsFd(t, {"country"}, "gdp"));
}

TEST(FdTest, CompositeLhs) {
  const Table t = MakeTable();
  EXPECT_TRUE(HoldsFd(t, {"country", "age"}, "continent"));
}

TEST(FdTest, NullLhsRowsSkipped) {
  Table t;
  t.AddColumn("a", ColumnType::kCategorical);
  t.AddColumn("b", ColumnType::kCategorical);
  t.AddRow({Value("x"), Value("1")});
  t.AddRow({Value(), Value("2")});
  t.AddRow({Value(), Value("3")});
  EXPECT_TRUE(HoldsFd(t, {"a"}, "b"));
}

TEST(FdTest, NullRhsCountsAsDistinctValue) {
  Table t;
  t.AddColumn("a", ColumnType::kCategorical);
  t.AddColumn("b", ColumnType::kCategorical);
  t.AddRow({Value("x"), Value("1")});
  t.AddRow({Value("x"), Value()});
  EXPECT_FALSE(HoldsFd(t, {"a"}, "b"));
}

TEST(FdTest, PartitionSplitsAttributes) {
  const Table t = MakeTable();
  const AttributePartition part =
      PartitionAttributes(t, {"country"}, "salary");
  ASSERT_EQ(part.grouping_attributes.size(), 2u);
  EXPECT_EQ(part.grouping_attributes[0], "continent");
  EXPECT_EQ(part.grouping_attributes[1], "gdp");
  ASSERT_EQ(part.treatment_attributes.size(), 1u);
  EXPECT_EQ(part.treatment_attributes[0], "age");
}

TEST(FdTest, PartitionExcludesGroupByAndOutcome) {
  const Table t = MakeTable();
  const AttributePartition part =
      PartitionAttributes(t, {"country"}, "salary");
  for (const auto& a : part.grouping_attributes) {
    EXPECT_NE(a, "country");
    EXPECT_NE(a, "salary");
  }
  for (const auto& a : part.treatment_attributes) {
    EXPECT_NE(a, "country");
    EXPECT_NE(a, "salary");
  }
}

}  // namespace
}  // namespace causumx
