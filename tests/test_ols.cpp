// Unit tests for the OLS solver underpinning CATE estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/ols.h"
#include "util/rng.h"

namespace causumx {
namespace {

TEST(OlsTest, ExactLineFit) {
  // y = 3 + 2x, no noise: coefficients recovered exactly.
  DesignMatrix x(5, 2);
  std::vector<double> y(5);
  for (size_t i = 0; i < 5; ++i) {
    x.At(i, 0) = 1.0;
    x.At(i, 1) = static_cast<double>(i);
    y[i] = 3.0 + 2.0 * static_cast<double>(i);
  }
  const OlsResult fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.residual_variance, 0.0, 1e-12);
}

TEST(OlsTest, NoisyFitRecoversWithinError) {
  Rng rng(5);
  const size_t n = 5000;
  DesignMatrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextGaussian();
    const double b = rng.NextGaussian();
    x.At(i, 0) = 1.0;
    x.At(i, 1) = a;
    x.At(i, 2) = b;
    y[i] = 1.0 + 4.0 * a - 2.5 * b + rng.NextGaussian(0, 0.5);
  }
  const OlsResult fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 4.0, 0.05);
  EXPECT_NEAR(fit.coefficients[2], -2.5, 0.05);
  EXPECT_NEAR(fit.residual_variance, 0.25, 0.02);
}

TEST(OlsTest, StandardErrorsScaleWithNoise) {
  Rng rng(7);
  const size_t n = 2000;
  DesignMatrix x(n, 2);
  std::vector<double> y_low(n), y_high(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextGaussian();
    x.At(i, 0) = 1.0;
    x.At(i, 1) = a;
    const double noise = rng.NextGaussian();
    y_low[i] = 2.0 * a + 0.1 * noise;
    y_high[i] = 2.0 * a + 2.0 * noise;
  }
  const OlsResult low = FitOls(x, y_low);
  const OlsResult high = FitOls(x, y_high);
  ASSERT_TRUE(low.ok && high.ok);
  EXPECT_LT(low.std_errors[1] * 5, high.std_errors[1]);
}

TEST(OlsTest, PValueSignificantForRealEffect) {
  Rng rng(9);
  const size_t n = 500;
  DesignMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = (i % 2 == 0) ? 1.0 : 0.0;
    x.At(i, 0) = 1.0;
    x.At(i, 1) = t;
    y[i] = 5.0 * t + rng.NextGaussian();
  }
  const OlsResult fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_LT(fit.PValue(1), 1e-10);
  EXPECT_GT(std::fabs(fit.TStat(1)), 10.0);
}

TEST(OlsTest, PValueLargeForNullEffect) {
  Rng rng(11);
  const size_t n = 500;
  DesignMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = 1.0;
    x.At(i, 1) = (i % 2 == 0) ? 1.0 : 0.0;
    y[i] = rng.NextGaussian();  // no dependence on x1
  }
  const OlsResult fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.PValue(1), 0.01);
}

TEST(OlsTest, UnderdeterminedFails) {
  DesignMatrix x(2, 3);
  std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(FitOls(x, y).ok);
}

TEST(OlsTest, CollinearDesignSurvivesViaJitter) {
  // Second and third columns identical: rank-deficient normal equations.
  Rng rng(13);
  const size_t n = 100;
  DesignMatrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextGaussian();
    x.At(i, 0) = 1.0;
    x.At(i, 1) = a;
    x.At(i, 2) = a;
    y[i] = a + rng.NextGaussian(0, 0.1);
  }
  const OlsResult fit = FitOls(x, y);
  // Either the jitter path solves it (preferred) or it reports failure —
  // it must not produce NaNs.
  if (fit.ok) {
    for (double c : fit.coefficients) EXPECT_FALSE(std::isnan(c));
    // The collinear pair should split the unit effect between them.
    EXPECT_NEAR(fit.coefficients[1] + fit.coefficients[2], 1.0, 0.1);
  }
}

TEST(OlsTest, SolveSpdIdentity) {
  std::vector<std::vector<double>> a = {{1, 0}, {0, 1}};
  std::vector<double> b = {3.0, -4.0};
  ASSERT_TRUE(SolveSpd(&a, &b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], -4.0, 1e-12);
}

TEST(OlsTest, SolveSpdKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<std::vector<double>> a = {{4, 2}, {2, 3}};
  std::vector<double> b = {10.0, 8.0};
  ASSERT_TRUE(SolveSpd(&a, &b));
  EXPECT_NEAR(b[0], 1.75, 1e-9);
  EXPECT_NEAR(b[1], 1.5, 1e-9);
  // `a` now holds the inverse of the original matrix.
  EXPECT_NEAR(a[0][0], 0.375, 1e-9);
  EXPECT_NEAR(a[0][1], -0.25, 1e-9);
  EXPECT_NEAR(a[1][1], 0.5, 1e-9);
}

}  // namespace
}  // namespace causumx
