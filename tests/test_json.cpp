// Tests for the minimal JSON parser (util/json) and the service's JSONL
// batch runner (service/batch), which is its main consumer.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/batch.h"
#include "service/explanation_service.h"
#include "util/json.h"

namespace causumx {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").is_null());
  EXPECT_EQ(JsonValue::Parse("true").AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25").AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17").AsNumber(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").AsNumber(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse("\"a\\\"b\\\\c\\n\\t\"").AsString(),
            "a\"b\\c\n\t");
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\\u00e9\"").AsString(), "A\xc3\xa9");
}

TEST(JsonParseTest, NestedStructure) {
  const JsonValue v = JsonValue::Parse(
      "{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": {\"e\": true}, \"f\": null}");
  ASSERT_EQ(v.kind(), JsonValue::Kind::kObject);
  const auto& arr = v.Find("a")->AsArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].AsNumber(), 2.0);
  EXPECT_EQ(arr[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(v.Find("d")->Find("e")->AsBool());
  EXPECT_TRUE(v.Find("f")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_EQ(v.GetString("x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(v.GetNumber("x", 7.0), 7.0);
}

TEST(JsonParseTest, MalformedInputsThrow) {
  EXPECT_THROW(JsonValue::Parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"open"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("1 2"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{}").AsArray(), std::runtime_error);
}

// Fuzzing regressions: escape sequences truncated by end-of-input must
// come back as typed parse errors at every cut point, not reads past the
// buffer.
TEST(JsonParseTest, TruncatedEscapesThrow) {
  EXPECT_THROW(JsonValue::Parse("\"\\"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"\\u"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"\\u0"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"\\u00"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"\\u004"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"truncated \\u00"), std::runtime_error);
  // A high surrogate whose low half is cut off mid-escape.
  EXPECT_THROW(JsonValue::Parse("\"\\ud83d\\ud"), std::runtime_error);
}

// Fuzzing regression: the recursive-descent parser used to overflow the
// stack on a long run of '[' (remotely reachable — the HTTP server
// parses request bodies with this). Depth past the limit is now a typed
// parse error; documents at sane depths still parse.
TEST(JsonParseTest, PathologicalNestingIsAParseError) {
  EXPECT_THROW(JsonValue::Parse(std::string(100000, '[')),
               std::runtime_error);
  std::string deep_obj;
  for (int i = 0; i < 100000; ++i) deep_obj += "{\"a\":";
  EXPECT_THROW(JsonValue::Parse(deep_obj), std::runtime_error);

  // 200 levels (under the 256 cap) parses fine.
  const std::string ok =
      std::string(200, '[') + "1" + std::string(200, ']');
  EXPECT_NO_THROW(JsonValue::Parse(ok));
}

TEST(JsonParseTest, RoundTripsJsonExportOutput) {
  // The writer side (core/json_export) and this reader must agree.
  SyntheticOptions opt;
  opt.num_rows = 600;
  GeneratedDataset ds = MakeSyntheticDataset(opt);
  ExplanationService service;
  service.RegisterTable("t", std::move(ds.table));
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  const CauSumXResult r =
      service.Explain("t", ds.default_query, ds.dag, config);
  const JsonValue v =
      JsonValue::Parse(SummaryToJson(r.summary, &ds.default_query));
  EXPECT_NE(v.Find("explanations"), nullptr);
  EXPECT_DOUBLE_EQ(v.GetNumber("num_groups", -1),
                   static_cast<double>(r.summary.num_groups));
}

TEST(BatchTest, ExecutesRequestsAndIsolatesFailures) {
  SyntheticOptions opt;
  opt.num_rows = 800;
  GeneratedDataset ds = MakeSyntheticDataset(opt);
  ExplanationService service;
  service.RegisterTable("synthetic", std::move(ds.table));

  std::istringstream in(
      // A valid request (the synthetic schema groups by G, averages O).
      "{\"id\": \"good\", \"table\": \"synthetic\", \"group_by\": [\"G\"], "
      "\"avg\": \"O\", \"theta\": 0.25}\n"
      "\n"  // blank lines are skipped
      "{\"id\": \"no-such-table\", \"table\": \"nope\", "
      "\"group_by\": [\"G\"], \"avg\": \"O\"}\n"
      "this is not json\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(service, in, out);
  EXPECT_EQ(summary.requests, 3u);
  EXPECT_EQ(summary.succeeded, 1u);
  EXPECT_EQ(summary.failed, 2u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  JsonValue first = JsonValue::Parse(line);
  EXPECT_EQ(first.GetString("id"), "good");
  EXPECT_TRUE(first.GetBool("ok", false));
  EXPECT_NE(first.Find("summary"), nullptr);

  ASSERT_TRUE(std::getline(lines, line));
  JsonValue second = JsonValue::Parse(line);
  EXPECT_EQ(second.GetString("id"), "no-such-table");
  EXPECT_FALSE(second.GetBool("ok", true));
  EXPECT_FALSE(second.GetString("error").empty());

  ASSERT_TRUE(std::getline(lines, line));
  JsonValue third = JsonValue::Parse(line);
  EXPECT_FALSE(third.GetBool("ok", true));
}

TEST(BatchTest, ParseWherePredicateForms) {
  Table t;
  t.AddColumn("cat", ColumnType::kCategorical);
  t.AddColumn("num", ColumnType::kDouble);
  t.AddRow({Value("x"), Value(1.5)});

  const SimplePredicate eq = ParseWherePredicate("cat=x", t);
  EXPECT_EQ(eq.attribute, "cat");
  EXPECT_EQ(eq.op, CompareOp::kEq);
  EXPECT_EQ(eq.value.AsString(), "x");

  const SimplePredicate ge = ParseWherePredicate("num >= 2.5", t);
  EXPECT_EQ(ge.op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(ge.value.AsDouble(), 2.5);

  EXPECT_THROW(ParseWherePredicate("unknown=1", t), std::runtime_error);
  EXPECT_THROW(ParseWherePredicate("no operator", t), std::runtime_error);
}

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriterTest, ComposesNestedDocuments) {
  JsonWriter w;
  w.BeginObject()
      .Key("status").String("ok")
      .Key("count").Uint(3)
      .Key("delta").Int(-7)
      .Key("ratio").Double(0.5)
      .Key("flag").Bool(true)
      .Key("missing").Null()
      .Key("tables").BeginArray().String("a").String("b").EndArray()
      .Key("nested").BeginObject().Key("x").Uint(1).EndObject()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"status\":\"ok\",\"count\":3,\"delta\":-7,\"ratio\":0.5,"
            "\"flag\":true,\"missing\":null,\"tables\":[\"a\",\"b\"],"
            "\"nested\":{\"x\":1}}");
}

TEST(JsonWriterTest, EscapesStringsAndRoundTripsDoubles) {
  JsonWriter w;
  w.BeginObject().Key("s").String("a\"b\\c\nd").Key("pi").Double(
      3.141592653589793).EndObject();
  const JsonValue parsed = JsonValue::Parse(w.str());
  EXPECT_EQ(parsed.GetString("s"), "a\"b\\c\nd");
  EXPECT_EQ(parsed.GetNumber("pi", 0), 3.141592653589793);

  JsonWriter nonfinite;
  nonfinite.BeginArray().Double(std::numeric_limits<double>::infinity())
      .EndArray();
  EXPECT_EQ(nonfinite.str(), "[null]");
}

TEST(JsonWriterTest, RawSplicesPreserializedJson) {
  JsonWriter w;
  w.BeginObject().Key("summary").Raw("{\"k\":5}").EndObject();
  EXPECT_EQ(w.str(), "{\"summary\":{\"k\":5}}");
}

TEST(JsonWriterTest, MisuseThrows) {
  JsonWriter incomplete;
  incomplete.BeginObject();
  EXPECT_THROW(incomplete.str(), std::logic_error);

  JsonWriter keyless;
  keyless.BeginObject();
  EXPECT_THROW(keyless.Uint(1), std::logic_error);

  JsonWriter mismatched;
  mismatched.BeginArray();
  EXPECT_THROW(mismatched.EndObject(), std::logic_error);
}

}  // namespace
}  // namespace causumx
