// Unit tests for the dynamic bitset.

#include "util/bitset.h"

#include <gtest/gtest.h>

namespace causumx {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, SetClearTest) {
  Bitset b(130);  // crosses a word boundary
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, TestOutOfRangeIsFalse) {
  Bitset b(10);
  EXPECT_FALSE(b.Test(10));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitsetTest, UnionIntersection) {
  Bitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  const Bitset u = a | b;
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.Test(1) && u.Test(2) && u.Test(3));
  const Bitset i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(BitsetTest, SubsetRelation) {
  Bitset a(10), b(10);
  a.Set(1);
  b.Set(1);
  b.Set(5);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(BitsetTest, ToIndicesAscending) {
  Bitset b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  const auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 5u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(50), b(50);
  a.Set(7);
  b.Set(7);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(8);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(BitsetTest, HashDistinguishesSizes) {
  Bitset a(10), b(20);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(BitsetTest, SetAllClearsPaddingBits) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(b.Test(i));
}

TEST(BitsetTest, SetAllExactWordMultiple) {
  Bitset b(128);
  b.SetAll();
  EXPECT_EQ(b.Count(), 128u);
}

TEST(BitsetTest, InPlaceOps) {
  Bitset a(10), b(10);
  a.Set(1);
  b.Set(2);
  a |= b;
  EXPECT_EQ(a.Count(), 2u);
  Bitset mask(10);
  mask.Set(2);
  a &= mask;
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(2));
}

TEST(BitsetTest, ResizeGrowPreservesBitsAndAppendsZeros) {
  Bitset b(10);
  b.Set(0);
  b.Set(9);
  b.Resize(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(9));
  EXPECT_FALSE(b.Test(10));
  EXPECT_FALSE(b.Test(199));
  // The zero-extension must be canonical: equal to a bitset built at the
  // larger size directly (word-wise equality and Hash agree).
  Bitset direct(200);
  direct.Set(0);
  direct.Set(9);
  EXPECT_TRUE(b == direct);
  EXPECT_EQ(b.Hash(), direct.Hash());
}

TEST(BitsetTest, ResizeShrinkDropsAndClearsPadding) {
  Bitset b(100);
  b.SetAll();
  b.Resize(70);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.Count(), 70u);
  Bitset direct(70);
  direct.SetAll();
  EXPECT_TRUE(b == direct);
  EXPECT_EQ(b.Hash(), direct.Hash());
}

TEST(BitsetDedupTest, ExactComparisonOnForgedCollision) {
  Bitset a(64), b(64);
  a.Set(1);
  b.Set(2);
  BitsetDedup seen;
  const uint64_t collided = 42;  // simulate a 64-bit Hash() collision
  EXPECT_TRUE(seen.Insert(collided, a));
  EXPECT_TRUE(seen.Insert(collided, b));   // distinct content survives
  EXPECT_FALSE(seen.Insert(collided, a));  // true duplicate rejected
}

TEST(BitsetDedupTest, ContainsUsesContentHash) {
  Bitset a(64), b(64);
  a.Set(1);
  b.Set(2);
  BitsetDedup seen;
  EXPECT_FALSE(seen.Contains(a));
  EXPECT_TRUE(seen.Insert(a));
  EXPECT_TRUE(seen.Contains(a));
  EXPECT_FALSE(seen.Contains(b));
  EXPECT_FALSE(seen.Insert(a));
  EXPECT_TRUE(seen.Insert(b));
  EXPECT_TRUE(seen.Contains(b));
}

}  // namespace
}  // namespace causumx
