// Unit tests for the dynamic bitset.

#include "util/bitset.h"

#include <gtest/gtest.h>

namespace causumx {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, SetClearTest) {
  Bitset b(130);  // crosses a word boundary
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, TestOutOfRangeIsFalse) {
  Bitset b(10);
  EXPECT_FALSE(b.Test(10));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitsetTest, UnionIntersection) {
  Bitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  const Bitset u = a | b;
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.Test(1) && u.Test(2) && u.Test(3));
  const Bitset i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(BitsetTest, SubsetRelation) {
  Bitset a(10), b(10);
  a.Set(1);
  b.Set(1);
  b.Set(5);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(BitsetTest, ToIndicesAscending) {
  Bitset b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  const auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 5u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(50), b(50);
  a.Set(7);
  b.Set(7);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(8);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(BitsetTest, HashDistinguishesSizes) {
  Bitset a(10), b(20);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(BitsetTest, SetAllClearsPaddingBits) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(b.Test(i));
}

TEST(BitsetTest, SetAllExactWordMultiple) {
  Bitset b(128);
  b.SetAll();
  EXPECT_EQ(b.Count(), 128u);
}

TEST(BitsetTest, InPlaceOps) {
  Bitset a(10), b(10);
  a.Set(1);
  b.Set(2);
  a |= b;
  EXPECT_EQ(a.Count(), 2u);
  Bitset mask(10);
  mask.Set(2);
  a &= mask;
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(2));
}

}  // namespace
}  // namespace causumx
