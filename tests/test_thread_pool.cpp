// Unit tests for the worker pool used by treatment-pattern mining.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace causumx {
namespace {

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.Submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ManyTasksAccumulateCorrectly) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10000, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i));
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, SequentialSubmitsOrdered) {
  // Futures resolve independently; results must all arrive.
  ThreadPool pool(3);
  std::vector<std::future<void>> futs;
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.Submit([&] { done.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace causumx
