// Tests for the DAG text/DOT interchange formats.

#include <gtest/gtest.h>

#include <fstream>

#include "causal/dag_io.h"

namespace causumx {
namespace {

TEST(DagIoTest, ParsesEdgeList) {
  const CausalDag dag = ParseDagText(
      "# salary model\n"
      "Age -> Education\n"
      "Education -> Salary, Role\n"
      "\n"
      "Hobby\n");
  EXPECT_EQ(dag.NumNodes(), 5u);
  EXPECT_EQ(dag.NumEdges(), 3u);
  EXPECT_TRUE(dag.HasEdge("Age", "Education"));
  EXPECT_TRUE(dag.HasEdge("Education", "Role"));
  EXPECT_TRUE(dag.HasNode("Hobby"));
  EXPECT_TRUE(dag.Children("Hobby").empty());
}

TEST(DagIoTest, CommentsAndWhitespaceIgnored) {
  const CausalDag dag = ParseDagText(
      "  A -> B   # inline comment\n"
      "   # full-line comment\n"
      "  B  ->   C  \n");
  EXPECT_EQ(dag.NumEdges(), 2u);
  EXPECT_TRUE(dag.HasEdge("B", "C"));
}

TEST(DagIoTest, CycleRejectedWithLineNumber) {
  try {
    ParseDagText("A -> B\nB -> A\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DagIoTest, MalformedLinesRejected) {
  EXPECT_THROW(ParseDagText("-> B\n"), std::runtime_error);
  EXPECT_THROW(ParseDagText("A -> \n"), std::runtime_error);
}

TEST(DagIoTest, RoundTripThroughText) {
  CausalDag dag;
  dag.AddEdge("X", "Y");
  dag.AddEdge("X", "Z");
  dag.AddEdge("Y", "Z");
  dag.AddNode("Lonely");
  const CausalDag back = ParseDagText(DagToText(dag));
  EXPECT_EQ(back.NumNodes(), dag.NumNodes());
  EXPECT_EQ(back.NumEdges(), dag.NumEdges());
  EXPECT_EQ(back.EdgeDifference(dag), 0u);
  EXPECT_TRUE(back.HasNode("Lonely"));
}

TEST(DagIoTest, ParsesOwnDotOutput) {
  CausalDag dag;
  dag.AddEdge("Age", "Salary");
  dag.AddEdge("Role", "Salary");
  dag.AddNode("Hobby");
  const CausalDag back = ParseDotText(dag.ToDot("G"));
  EXPECT_EQ(back.NumEdges(), 2u);
  EXPECT_TRUE(back.HasEdge("Age", "Salary"));
  EXPECT_TRUE(back.HasNode("Hobby"));
}

TEST(DagIoTest, DotHandlesSpacedNames) {
  const CausalDag dag = ParseDotText(
      "digraph G {\n"
      "  \"Years Coding\";\n"
      "  \"Years Coding\" -> \"Annual Salary\";\n"
      "}\n");
  EXPECT_TRUE(dag.HasEdge("Years Coding", "Annual Salary"));
}

TEST(DagIoTest, FileRoundTrip) {
  CausalDag dag;
  dag.AddEdge("A", "B");
  const std::string path = "/tmp/causumx_dag_io_test.txt";
  {
    std::ofstream f(path);
    f << DagToText(dag);
  }
  const CausalDag back = ReadDagFile(path);
  EXPECT_TRUE(back.HasEdge("A", "B"));

  // DOT files are sniffed by their header.
  const std::string dot_path = "/tmp/causumx_dag_io_test.dot";
  {
    std::ofstream f(dot_path);
    f << dag.ToDot("T");
  }
  const CausalDag dot_back = ReadDagFile(dot_path);
  EXPECT_TRUE(dot_back.HasEdge("A", "B"));

  EXPECT_THROW(ReadDagFile("/nonexistent/nope.txt"), std::runtime_error);
}

}  // namespace
}  // namespace causumx
