// Unit tests for the Fisher-z conditional-independence tester.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/independence.h"
#include "util/rng.h"

namespace causumx {
namespace {

// X -> Z -> Y chain: X and Y dependent marginally, independent given Z.
Table MakeChainTable(size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Z", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    const double z = 2.0 * x + rng.NextGaussian();
    const double y = 1.5 * z + rng.NextGaussian();
    t.AddRow({Value(x), Value(z), Value(y)});
  }
  return t;
}

TEST(IndependenceTest, MarginalDependenceDetected) {
  const Table t = MakeChainTable(3000, 1);
  FisherZTest test(t);
  EXPECT_FALSE(test.Independent("X", "Y", {}));
  EXPECT_LT(test.PValue("X", "Y", {}), 1e-6);
}

TEST(IndependenceTest, ConditionalIndependenceDetected) {
  const Table t = MakeChainTable(3000, 2);
  FisherZTest test(t);
  EXPECT_TRUE(test.Independent("X", "Y", {"Z"}));
  EXPECT_GT(test.PValue("X", "Y", {"Z"}), 0.01);
}

TEST(IndependenceTest, TrulyIndependentVariables) {
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  Rng rng(3);
  for (size_t i = 0; i < 3000; ++i) {
    t.AddRow({Value(rng.NextGaussian()), Value(rng.NextGaussian())});
  }
  FisherZTest test(t);
  EXPECT_TRUE(test.Independent("A", "B", {}));
}

TEST(IndependenceTest, PartialCorrelationSigns) {
  const Table t = MakeChainTable(3000, 4);
  FisherZTest test(t);
  EXPECT_GT(test.PartialCorrelation("X", "Z", {}), 0.8);
  EXPECT_GT(test.PartialCorrelation("X", "Y", {}), 0.5);
  EXPECT_LT(std::fabs(test.PartialCorrelation("X", "Y", {"Z"})), 0.1);
}

TEST(IndependenceTest, ColliderOpensOnConditioning) {
  // X -> Z <- Y collider: X,Y independent, dependent given Z.
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  t.AddColumn("Z", ColumnType::kDouble);
  Rng rng(5);
  for (size_t i = 0; i < 5000; ++i) {
    const double x = rng.NextGaussian();
    const double y = rng.NextGaussian();
    const double z = x + y + 0.3 * rng.NextGaussian();
    t.AddRow({Value(x), Value(y), Value(z)});
  }
  FisherZTest test(t);
  EXPECT_TRUE(test.Independent("X", "Y", {}));
  EXPECT_FALSE(test.Independent("X", "Y", {"Z"}));
}

TEST(IndependenceTest, RowCapKeepsTestUsable) {
  const Table t = MakeChainTable(10000, 6);
  FisherZTest capped(t, /*max_rows=*/1000);
  EXPECT_LE(capped.sample_size(), 1001u);
  EXPECT_FALSE(capped.Independent("X", "Y", {}));
  EXPECT_TRUE(capped.Independent("X", "Y", {"Z"}));
}

TEST(IndependenceTest, UnknownVariableThrows) {
  const Table t = MakeChainTable(100, 7);
  FisherZTest test(t);
  EXPECT_THROW(test.PValue("X", "Nope", {}), std::out_of_range);
}

}  // namespace
}  // namespace causumx
