#ifndef FIXTURE_CLEAN_ENGINE_KERNEL_H_
#define FIXTURE_CLEAN_ENGINE_KERNEL_H_

struct CleanOps {
  long (*sum)(const long*, int);
};

long SumRange(const long* xs, int n);
const CleanOps* GetCleanOps();

#endif  // FIXTURE_CLEAN_ENGINE_KERNEL_H_
