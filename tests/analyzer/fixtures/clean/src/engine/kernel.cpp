#include "engine/kernel.h"

long SumRange(const long* xs, int n) {
  long total = 0;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

const CleanOps* GetCleanOps() {
  static const CleanOps ops = {&SumRange};
  return &ops;
}
