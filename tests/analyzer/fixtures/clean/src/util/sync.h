#ifndef FIXTURE_CLEAN_UTIL_SYNC_H_
#define FIXTURE_CLEAN_UTIL_SYNC_H_

struct JobQueue {
  util::Mutex mu;
  util::CondVar cv;
  int pending = 0;

  void Await();
  void Post();
};

struct TwoPhase {
  util::Mutex first;
  util::Mutex second;
};

void RunPhases(TwoPhase* tp);
void RunPhasesAgain(TwoPhase* tp);

#endif  // FIXTURE_CLEAN_UTIL_SYNC_H_
