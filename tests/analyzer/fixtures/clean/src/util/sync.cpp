#include "util/sync.h"

void JobQueue::Await() {
  util::MutexLock lock(mu);
  while (pending == 0) {
    cv.Wait(mu);
  }
  --pending;
}

void JobQueue::Post() {
  util::MutexLock lock(mu);
  ++pending;
}

void RunPhases(TwoPhase* tp) {
  util::MutexLock a(tp->first);
  util::MutexLock b(tp->second);
}

void RunPhasesAgain(TwoPhase* tp) {
  util::MutexLock a(tp->first);
  util::MutexLock b(tp->second);
}
