#include "util/sync.h"

struct CleanServer {
  void AcceptLoop();
  int Decode(const std::string& raw);
};

int CleanServer::Decode(const std::string& raw) {
  try {
    return std::stoi(raw);
  } catch (...) {
    return 0;
  }
}

void CleanServer::AcceptLoop() {
  JobQueue queue;
  queue.Post();
  Decode("1");
}
