// Deliberate violations: Rebuild fans out on the pool while holding the
// cache mutex, and BadWait waits on a condvar while holding an
// unrelated second mutex.

struct RowCache {
  util::Mutex mu;
};

struct Gate {
  util::Mutex gate_mu;
  util::Mutex stats_mu;
  util::CondVar cv;
};

void Rebuild(RowCache* cache, int shards) {
  util::MutexLock lock(cache->mu);
  pool_->ParallelFor(shards);
}

void BadWait(Gate* g) {
  util::MutexLock stats(g->stats_mu);
  util::MutexLock gate(g->gate_mu);
  while (!g->ready) {
    g->cv.Wait(g->gate_mu);
  }
}
