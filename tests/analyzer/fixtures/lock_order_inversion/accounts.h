#ifndef FIXTURE_ACCOUNTS_H_
#define FIXTURE_ACCOUNTS_H_

struct AccountA {
  util::Mutex mu_a;
};

struct AccountB {
  util::Mutex mu_b;
};

#endif  // FIXTURE_ACCOUNTS_H_
