// Crafted two-lock order inversion: TransferAB takes mu_a then mu_b,
// while DrainB takes mu_b and then reaches mu_a through GrabA — an
// interprocedural B -> A edge that closes the cycle.
#include "accounts.h"

void GrabA(AccountA* a) {
  util::MutexLock hold_a(a->mu_a);
}

void TransferAB(AccountA* a, AccountB* b) {
  util::MutexLock la(a->mu_a);
  util::MutexLock lb(b->mu_b);
}

void DrainB(AccountB* b, AccountA* a) {
  util::MutexLock lb(b->mu_b);
  GrabA(a);
}
