// Deliberate violation: AcceptLoop reaches ParseHeader, whose stoi can
// throw out of the boundary; ServeOne shows the covered pattern.

struct MiniServer {
  void AcceptLoop();
  void ServeOne();
  int ParseHeader(const std::string& raw);
};

int MiniServer::ParseHeader(const std::string& raw) {
  return std::stoi(raw);
}

void MiniServer::ServeOne() {
  try {
    ParseHeader("42");
  } catch (const std::exception& e) {
    (void)e;
  }
}

void MiniServer::AcceptLoop() {
  ServeOne();
  ParseHeader("7");
}
