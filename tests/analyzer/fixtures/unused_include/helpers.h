#ifndef FIXTURE_HELPERS_H_
#define FIXTURE_HELPERS_H_

int HelperValue();

#endif  // FIXTURE_HELPERS_H_
