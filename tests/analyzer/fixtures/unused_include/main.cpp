// Deliberate violation: helpers.h provides HelperValue, which this file
// never names.
#include "helpers.h"

int main() { return 0; }
