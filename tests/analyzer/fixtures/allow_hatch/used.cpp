// The hatch below suppresses the unused-include finding and carries the
// mandatory written reason, so this file is clean.
#include "values.h"  // causumx-analyzer: allow(unused-include) kept to anchor the fixture's include graph.

int LocalValue() { return 3; }
