#ifndef FIXTURE_VALUES_H_
#define FIXTURE_VALUES_H_

int SharedValue();

#endif  // FIXTURE_VALUES_H_
