// Deliberate violation: this hatch names a rule but gives no reason, so
// the analyzer flags the hatch itself.
#include "values.h"  // causumx-analyzer: allow(unused-include)

int OtherValue() { return 4; }
