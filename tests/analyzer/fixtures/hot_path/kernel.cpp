// Deliberate violations: FastSum is wired into the dispatch table yet
// heap-allocates, throws, and makes a virtual call.

struct Renderer {
  virtual void Render();
};

struct KernelOps {
  int (*sum)(const int*, int);
};

int FastSum(const int* xs, int n);

const KernelOps* GetOps() {
  static const KernelOps ops = {&FastSum};
  return &ops;
}

int FastSum(const int* xs, int n) {
  std::vector<int> scratch(n);
  if (n < 0) {
    throw std::runtime_error("negative length");
  }
  Renderer r;
  r.Render();
  int total = 0;
  for (int i = 0; i < n; ++i) total += scratch[i] + xs[i];
  return total;
}
