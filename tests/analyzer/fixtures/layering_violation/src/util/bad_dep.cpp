// Deliberate violation: util is the bottom layer and may not reach up
// into engine.
#include "engine/core.h"

int UtilShim(const char* s) { return SpinOnce(s); }
