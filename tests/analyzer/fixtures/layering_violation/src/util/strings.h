#ifndef FIXTURE_UTIL_STRINGS_H_
#define FIXTURE_UTIL_STRINGS_H_

int TrimLength(const char* s);

#endif  // FIXTURE_UTIL_STRINGS_H_
