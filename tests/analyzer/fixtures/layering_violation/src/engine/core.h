#ifndef FIXTURE_ENGINE_CORE_H_
#define FIXTURE_ENGINE_CORE_H_

#include "util/strings.h"

inline int SpinOnce(const char* s) { return TrimLength(s); }

#endif  // FIXTURE_ENGINE_CORE_H_
