// Differential property harness for the sharded parallel execution
// engine: on seeded random tables (mixed categorical / numeric / null
// columns), every sharded artifact — predicate bitsets, aggregate
// views, CATE estimates, and end-to-end explanation summaries — must be
// bit-identical to the unsharded reference path, for shard counts from
// 1 to 16, with and without a thread pool, and across random append
// batches through the delta-extension path.
//
// The suite runs 20 seeds x >= 5 generated cases each (>= 100 cases
// total, counted by the shard-count/pattern draws inside each seed);
// CI executes it under ASan+UBSan and TSan.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "causal/estimator_context.h"
#include "core/causumx.h"
#include "core/json_export.h"
#include "dataset/group_query.h"
#include "engine/eval_engine.h"
#include "util/shard_plan.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace causumx {
namespace {

struct RandomWorld {
  std::shared_ptr<Table> table;
  std::vector<SimplePredicate> atoms;
};

// Mixed-type table with ~6% nulls per column; 150-600 rows spans 3-10
// 64-row summation blocks, so shard counts up to 16 exercise real
// multi-shard plans (and clamping beyond them).
RandomWorld MakeWorld(uint64_t seed, size_t min_rows = 150) {
  RandomWorld w;
  Rng rng(seed);
  w.table = std::make_shared<Table>();
  w.table->AddColumn("g1", ColumnType::kCategorical);
  w.table->AddColumn("g2", ColumnType::kCategorical);
  w.table->AddColumn("t1", ColumnType::kCategorical);
  w.table->AddColumn("i1", ColumnType::kInt64);
  w.table->AddColumn("d1", ColumnType::kDouble);
  w.table->AddColumn("y", ColumnType::kDouble);
  const char* g1_vals[] = {"a", "b", "c", "d"};
  const char* g2_vals[] = {"x", "y", "z"};
  const char* t1_vals[] = {"lo", "hi"};
  const size_t n = min_rows + rng.NextBounded(450);
  for (size_t r = 0; r < n; ++r) {
    const double base = rng.NextGaussian() * 3.0;
    w.table->AddRow({
        rng.NextBool(0.06) ? Value() : Value(g1_vals[rng.NextBounded(4)]),
        rng.NextBool(0.06) ? Value() : Value(g2_vals[rng.NextBounded(3)]),
        rng.NextBool(0.06) ? Value() : Value(t1_vals[rng.NextBounded(2)]),
        rng.NextBool(0.06) ? Value() : Value(rng.NextInt(0, 9)),
        rng.NextBool(0.06) ? Value() : Value(rng.NextGaussian()),
        rng.NextBool(0.06) ? Value() : Value(1e6 + base + rng.NextDouble()),
    });
  }
  w.atoms = {
      SimplePredicate("g1", CompareOp::kEq, Value("a")),
      SimplePredicate("g1", CompareOp::kEq, Value("b")),
      SimplePredicate("g2", CompareOp::kEq, Value("x")),
      SimplePredicate("t1", CompareOp::kEq, Value("hi")),
      SimplePredicate("i1", CompareOp::kLt, Value(int64_t{5})),
      SimplePredicate("i1", CompareOp::kGe, Value(int64_t{2})),
      SimplePredicate("d1", CompareOp::kGt, Value(0.0)),
      SimplePredicate("d1", CompareOp::kLe, Value(0.8)),
  };
  return w;
}

Pattern RandomPattern(const RandomWorld& w, Rng* rng, size_t max_size) {
  std::vector<SimplePredicate> preds;
  const size_t size = 1 + rng->NextBounded(max_size);
  for (size_t i = 0; i < size; ++i) {
    preds.push_back(w.atoms[rng->NextBounded(w.atoms.size())]);
  }
  return Pattern(std::move(preds));
}

std::shared_ptr<EvalEngine> MakeShardedEngine(
    const std::shared_ptr<Table>& table, size_t shards,
    std::shared_ptr<ThreadPool> pool) {
  EvalEngineOptions options;
  options.cache_enabled = true;
  options.num_shards = shards;
  options.pool = std::move(pool);
  return std::make_shared<EvalEngine>(
      std::shared_ptr<const Table>(table), std::move(options));
}

void ExpectViewsIdentical(const AggregateView& a, const AggregateView& b,
                          size_t num_rows, const std::string& context) {
  ASSERT_EQ(a.NumGroups(), b.NumGroups()) << context;
  for (size_t g = 0; g < a.NumGroups(); ++g) {
    EXPECT_EQ(a.group(g).KeyString(), b.group(g).KeyString())
        << context << " group " << g;
    EXPECT_EQ(a.group(g).count, b.group(g).count) << context << " group " << g;
    // Bit-identical averages: the blocked summation makes the sharded
    // and serial paths produce the same doubles, not just close ones.
    EXPECT_EQ(a.group(g).average, b.group(g).average)
        << context << " group " << g;
    EXPECT_EQ(a.group(g).rows, b.group(g).rows) << context << " group " << g;
  }
  for (size_t r = 0; r < num_rows; ++r) {
    ASSERT_EQ(a.GroupOfRow(r), b.GroupOfRow(r)) << context << " row " << r;
  }
}

void ExpectEstimatesIdentical(const EffectEstimate& a,
                              const EffectEstimate& b,
                              const std::string& context) {
  EXPECT_EQ(a.valid, b.valid) << context;
  EXPECT_EQ(a.cate, b.cate) << context;
  EXPECT_EQ(a.std_error, b.std_error) << context;
  EXPECT_EQ(a.p_value, b.p_value) << context;
  EXPECT_EQ(a.n_treated, b.n_treated) << context;
  EXPECT_EQ(a.n_control, b.n_control) << context;
  EXPECT_EQ(a.n_used, b.n_used) << context;
}

class ShardedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Case family 1: predicate bitsets and pattern evaluation, sharded vs
// the cache-bypass reference, over 5 random shard counts per seed.
TEST_P(ShardedPropertyTest, BitsetsMatchReferenceAcrossShardCounts) {
  const RandomWorld w = MakeWorld(GetParam() * 101 + 11);
  Rng rng(GetParam() * 13 + 1);
  auto pool = std::make_shared<ThreadPool>(3);
  EvalEngine bypass(*w.table, /*cache_enabled=*/false);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t shards = 1 + rng.NextBounded(16);
    auto engine = MakeShardedEngine(w.table, shards, pool);
    for (int i = 0; i < 6; ++i) {
      const Pattern p = RandomPattern(w, &rng, 3);
      const Bitset expected = bypass.Evaluate(p);
      ASSERT_TRUE(engine->Evaluate(p) == expected)
          << "shards=" << shards << " " << p.ToString();
      // Single-atom segments assemble back to the reference bitset.
      const SimplePredicate& atom = p.predicates().front();
      ASSERT_TRUE(*engine->PredicateBits(engine->Intern(atom)) ==
                  Pattern({atom}).Evaluate(*w.table))
          << "shards=" << shards << " " << atom.ToString();
    }
    // Numeric views are exact regardless of the plan.
    const auto d1 = w.table->ColumnIndex("d1");
    const NumericColumnView& view = engine->Numeric(*d1);
    EvalEngine serial(*w.table, /*cache_enabled=*/true);
    const NumericColumnView& ref = serial.Numeric(*d1);
    ASSERT_TRUE(view.valid == ref.valid);
    for (size_t r = 0; r < w.table->NumRows(); ++r) {
      if (view.valid.Test(r)) {
        ASSERT_EQ(view.values[r], ref.values[r]) << "row " << r;
      }
    }
  }
}

// Case family 2: aggregate views — serial overload, sharded overloads
// (several plans, pooled and pool-less), and the string-keyed oracle.
TEST_P(ShardedPropertyTest, AggregateViewsMatchAcrossShardCounts) {
  const RandomWorld w = MakeWorld(GetParam() * 103 + 7);
  Rng rng(GetParam() * 17 + 2);
  auto pool = std::make_shared<ThreadPool>(3);
  for (int trial = 0; trial < 5; ++trial) {
    GroupByAvgQuery q;
    q.group_by = rng.NextBool(0.5)
                     ? std::vector<std::string>{"g1"}
                     : std::vector<std::string>{"g1", "g2"};
    q.avg_attribute = "y";
    if (rng.NextBool(0.4)) {
      q.where = Pattern({w.atoms[rng.NextBounded(w.atoms.size())]});
    }
    const AggregateView serial = AggregateView::Evaluate(*w.table, q);
    const AggregateView oracle =
        AggregateView::EvaluateReference(*w.table, q);
    ExpectViewsIdentical(serial, oracle, w.table->NumRows(), "vs oracle");
    const size_t shards = 1 + rng.NextBounded(16);
    const ShardPlan plan = ShardPlan::ForShardCount(
        w.table->NumRows(), shards, /*auto_shards=*/1);
    const AggregateView pooled =
        AggregateView::Evaluate(*w.table, q, plan, pool.get());
    ExpectViewsIdentical(serial, pooled, w.table->NumRows(),
                         "pooled shards=" + std::to_string(shards));
    const AggregateView poolless =
        AggregateView::Evaluate(*w.table, q, plan, nullptr);
    ExpectViewsIdentical(serial, poolless, w.table->NumRows(),
                         "pool-less shards=" + std::to_string(shards));
  }
}

// Case family 3: CATE estimates through sharded engines are bit-identical
// to the single-shard path (both estimator methods).
TEST_P(ShardedPropertyTest, CatesMatchAcrossShardCounts) {
  const RandomWorld w = MakeWorld(GetParam() * 107 + 3);
  Rng rng(GetParam() * 19 + 3);
  auto pool = std::make_shared<ThreadPool>(3);
  CausalDag dag;
  dag.AddEdge("g2", "t1");
  dag.AddEdge("g2", "y");
  dag.AddEdge("d1", "t1");
  dag.AddEdge("d1", "y");
  dag.AddEdge("t1", "y");
  for (int m = 0; m < 2; ++m) {
    EstimatorOptions opt;
    opt.min_group_size = 3;
    opt.method = m == 0 ? EstimationMethod::kRegressionAdjustment
                        : EstimationMethod::kIpw;
    auto serial_engine = MakeShardedEngine(w.table, 1, nullptr);
    EstimatorContext serial_ctx(serial_engine, dag, opt);
    const size_t shards = 2 + rng.NextBounded(15);
    auto sharded_engine = MakeShardedEngine(w.table, shards, pool);
    EstimatorContext sharded_ctx(sharded_engine, dag, opt);
    for (int trial = 0; trial < 4; ++trial) {
      const Pattern treatment(
          {w.atoms[3 + rng.NextBounded(w.atoms.size() - 3)]});
      const Pattern subpop_pattern = RandomPattern(w, &rng, 1);
      const Bitset subpop = subpop_pattern.Evaluate(*w.table);
      ExpectEstimatesIdentical(
          serial_ctx.EstimateCate(treatment, "y", subpop),
          sharded_ctx.EstimateCate(treatment, "y", subpop),
          "method=" + std::to_string(m) +
              " shards=" + std::to_string(shards) + " " +
              treatment.ToString());
    }
  }
}

// Case family 4: end-to-end summaries — RunCauSumX at shards=1/threads=1
// versus sharded multi-threaded runs render identical JSON.
TEST_P(ShardedPropertyTest, EndToEndSummariesMatch) {
  const RandomWorld w = MakeWorld(GetParam() * 109 + 5);
  Rng rng(GetParam() * 23 + 4);
  GroupByAvgQuery q;
  q.group_by = {"g1"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddEdge("t1", "y");
  dag.AddEdge("i1", "y");
  dag.AddEdge("d1", "y");
  CauSumXConfig base_config;
  base_config.k = 3;
  base_config.theta = 0.5;
  base_config.apriori_support = 0.05;
  base_config.estimator.min_group_size = 3;
  base_config.treatment.alpha = 0.5;
  base_config.grouping_attribute_allowlist = {"g2"};

  CauSumXConfig serial_config = base_config;
  serial_config.num_threads = 1;
  serial_config.num_shards = 1;
  const CauSumXResult serial = RunCauSumX(*w.table, q, dag, serial_config);

  for (const size_t shards : {2, 7, 16}) {
    CauSumXConfig sharded_config = base_config;
    sharded_config.num_threads = 3;
    sharded_config.num_shards = shards;
    const CauSumXResult sharded =
        RunCauSumX(*w.table, q, dag, sharded_config);
    EXPECT_EQ(SummaryToJson(serial.summary), SummaryToJson(sharded.summary))
        << "shards=" << shards;
    EXPECT_EQ(serial.view.NumGroups(), sharded.view.NumGroups());
  }
  // The greedy solver's parallel marginal-gain scan must pick the same
  // explanations as the serial scan.
  CauSumXConfig greedy_serial = base_config;
  greedy_serial.solver = FinalStepSolver::kGreedy;
  greedy_serial.num_threads = 1;
  greedy_serial.num_shards = 1;
  CauSumXConfig greedy_sharded = greedy_serial;
  greedy_sharded.num_threads = 3;
  greedy_sharded.num_shards = 5;
  EXPECT_EQ(
      SummaryToJson(RunCauSumX(*w.table, q, dag, greedy_serial).summary),
      SummaryToJson(RunCauSumX(*w.table, q, dag, greedy_sharded).summary));
}

// Case family 5: random append batches through the delta-extension path.
// A warm sharded engine extended by a delta must agree with fresh
// engines (sharded and unsharded) over the grown table, and the sharded
// view of the grown table must agree with the serial view.
TEST_P(ShardedPropertyTest, AppendsPreserveShardedEquivalence) {
  const RandomWorld w = MakeWorld(GetParam() * 113 + 9, /*min_rows=*/200);
  Rng rng(GetParam() * 29 + 5);
  auto pool = std::make_shared<ThreadPool>(3);
  const size_t total = w.table->NumRows();
  const size_t base_rows = total / 2 + rng.NextBounded(total / 4);

  auto base = std::make_shared<Table>(w.table->Head(base_rows));
  const size_t shards = 1 + rng.NextBounded(16);
  auto warm = MakeShardedEngine(base, shards, pool);
  // Warm a random subset of atoms (some segments cached, some not).
  std::vector<Pattern> warmed;
  for (const auto& atom : w.atoms) {
    if (rng.NextBool(0.6)) {
      warmed.push_back(Pattern({atom}));
      warm->Evaluate(warmed.back());
    }
  }
  warm->Numeric(*base->ColumnIndex("y"));

  // Apply 1-3 append batches, extending the engine after each.
  std::shared_ptr<const Table> current = base;
  std::shared_ptr<EvalEngine> extended = warm;
  size_t at = base_rows;
  const int batches = 1 + static_cast<int>(rng.NextBounded(3));
  for (int b = 0; b < batches && at < total; ++b) {
    const size_t next =
        b == batches - 1 ? total
                         : std::min(total, at + 1 + rng.NextBounded(
                                               (total - at) / 2 + 1));
    auto grown = std::make_shared<Table>(current->Clone());
    grown->AppendRows(w.table->MaterializeRows(at, next));
    extended = std::make_shared<EvalEngine>(
        std::shared_ptr<const Table>(grown), *extended);
    current = grown;
    at = next;
  }

  EvalEngine bypass(*current, /*cache_enabled=*/false);
  auto fresh_sharded = MakeShardedEngine(
      std::make_shared<Table>(current->Clone()), shards, pool);
  for (int i = 0; i < 8; ++i) {
    const Pattern p = RandomPattern(w, &rng, 3);
    const Bitset expected = bypass.Evaluate(p);
    ASSERT_TRUE(extended->Evaluate(p) == expected)
        << "extended shards=" << shards << " " << p.ToString();
    ASSERT_TRUE(fresh_sharded->Evaluate(p) == expected)
        << "fresh shards=" << shards << " " << p.ToString();
  }

  GroupByAvgQuery q;
  q.group_by = {"g1", "g2"};
  q.avg_attribute = "y";
  const AggregateView serial = AggregateView::Evaluate(*current, q);
  const AggregateView sharded = AggregateView::Evaluate(
      *current, q, extended->plan(), pool.get());
  ExpectViewsIdentical(serial, sharded, current->NumRows(),
                       "post-append view");
}

// Case family 6: kernel dispatch tiers x segment-compression policies.
// Every (tier, compression) cell must reproduce the cache-bypass
// reference bitsets, the serial aggregate view, and the CATE estimates
// bit for bit — dispatch is a throughput decision and compression a
// memory decision; neither may leak into results.
TEST_P(ShardedPropertyTest, TiersAndCompressionAreBitIdentical) {
  const RandomWorld w = MakeWorld(GetParam() * 127 + 13);
  Rng rng(GetParam() * 31 + 6);
  auto pool = std::make_shared<ThreadPool>(3);

  std::vector<Pattern> patterns;
  for (int i = 0; i < 6; ++i) patterns.push_back(RandomPattern(w, &rng, 3));
  GroupByAvgQuery q;
  q.group_by = {"g1", "g2"};
  q.avg_attribute = "y";
  q.where = patterns[0];
  CausalDag dag;
  dag.AddEdge("t1", "y");
  dag.AddEdge("d1", "y");
  const Pattern treatment({w.atoms[3]});
  Bitset subpop(w.table->NumRows());
  subpop.SetAll();

  // References, computed at whatever tier the process started with.
  EvalEngine bypass(*w.table, /*cache_enabled=*/false);
  std::vector<Bitset> expected_bits;
  for (const Pattern& p : patterns) expected_bits.push_back(bypass.Evaluate(p));
  const AggregateView expected_view = AggregateView::Evaluate(*w.table, q);
  EstimatorOptions est_opt;
  est_opt.min_group_size = 3;
  EstimatorContext ref_ctx(MakeShardedEngine(w.table, 1, nullptr), dag,
                           est_opt);
  const EffectEstimate expected_cate =
      ref_ctx.EstimateCate(treatment, "y", subpop);

  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (KernelTierSupported(KernelTier::kAvx2)) {
    tiers.push_back(KernelTier::kAvx2);
  }
  const KernelTier initial = ActiveKernelTier();
  const size_t shards = 1 + rng.NextBounded(16);
  for (KernelTier tier : tiers) {
    ASSERT_TRUE(SetKernelTier(tier));
    for (SegmentCompression compression :
         {SegmentCompression::kNever, SegmentCompression::kAlways,
          SegmentCompression::kAuto}) {
      EvalEngineOptions options;
      options.cache_enabled = true;
      options.num_shards = shards;
      options.pool = pool;
      options.compression = compression;
      auto engine = std::make_shared<EvalEngine>(
          std::shared_ptr<const Table>(w.table), options);
      const std::string context =
          std::string("tier=") + KernelTierName(tier) + " compression=" +
          std::to_string(static_cast<int>(compression)) +
          " shards=" + std::to_string(shards);
      for (size_t i = 0; i < patterns.size(); ++i) {
        ASSERT_TRUE(engine->Evaluate(patterns[i]) == expected_bits[i])
            << context << " " << patterns[i].ToString();
      }
      if (compression == SegmentCompression::kAlways) {
        EXPECT_GT(engine->Stats().segments_compressed, 0u) << context;
      }
      EstimatorContext ctx(engine, dag, est_opt);
      ExpectEstimatesIdentical(ctx.EstimateCate(treatment, "y", subpop),
                               expected_cate, context);
    }
    const AggregateView view =
        AggregateView::Evaluate(*w.table, q, ShardPlan(w.table->NumRows()),
                                pool.get());
    ExpectViewsIdentical(view, expected_view, w.table->NumRows(),
                         std::string("view tier=") + KernelTierName(tier));
  }
  SetKernelTier(initial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// Shard-plan invariants: full disjoint coverage, block alignment, clamping
// of out-of-range shard counts, and boundary stability under extension.
TEST(ShardPlanTest, CoverageAlignmentAndClamping) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t rows = rng.NextBounded(5000);
    const size_t requested = rng.NextBounded(40);  // 0 = auto
    const ShardPlan plan =
        ShardPlan::ForShardCount(rows, requested, /*auto_shards=*/4);
    const size_t shards = plan.NumShards();
    ASSERT_GE(shards, size_t{1});
    if (requested > 0) {
      ASSERT_LE(shards, std::max<size_t>(1, requested));
    }
    size_t covered = 0;
    for (size_t s = 0; s < shards; ++s) {
      ASSERT_EQ(plan.ShardBegin(s), covered);
      ASSERT_LE(plan.ShardEnd(s), rows);
      if (s + 1 < shards) {
        ASSERT_GT(plan.ShardEnd(s), plan.ShardBegin(s));
        ASSERT_EQ(plan.ShardEnd(s) % 64, size_t{0}) << "unaligned boundary";
      }
      covered = plan.ShardEnd(s);
    }
    ASSERT_EQ(covered, rows);
    for (size_t r = 0; r < rows; r += 37) {
      const size_t s = plan.ShardOfRow(r);
      ASSERT_GE(r, plan.ShardBegin(s));
      ASSERT_LT(r, plan.ShardEnd(s));
    }
  }
}

TEST(ShardPlanTest, ExtensionKeepsInteriorBoundaries) {
  const ShardPlan plan = ShardPlan::ForShardCount(1000, 8, 1);
  const ShardPlan grown = plan.Extended(1700);
  ASSERT_EQ(grown.shard_rows(), plan.shard_rows());
  for (size_t s = 0; s + 1 < plan.NumShards(); ++s) {
    EXPECT_EQ(grown.ShardBegin(s), plan.ShardBegin(s));
    EXPECT_EQ(grown.ShardEnd(s), plan.ShardEnd(s));
  }
  EXPECT_GE(grown.NumShards(), plan.NumShards());
  EXPECT_EQ(grown.ShardEnd(grown.NumShards() - 1), size_t{1700});
}

// A shard count far beyond the row count clamps to one shard per 64-row
// block and still evaluates correctly.
TEST(ShardPlanTest, OversizedShardCountClamps) {
  const ShardPlan plan = ShardPlan::ForShardCount(100, 1000000, 1);
  EXPECT_EQ(plan.shard_rows(), size_t{64});
  EXPECT_EQ(plan.NumShards(), size_t{2});
  const ShardPlan empty = ShardPlan::ForShardCount(0, 5, 1);
  EXPECT_EQ(empty.NumShards(), size_t{1});
  EXPECT_EQ(empty.ShardEnd(0), size_t{0});
}

}  // namespace
}  // namespace causumx
