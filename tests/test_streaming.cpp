// Streaming ingestion tests: versioned tables (AppendRows / Clone), CSV
// deltas parsed against a fixed schema, delta-extended EvalEngines,
// migrated EstimatorContexts, and the ExplanationService's copy-on-write
// Append — including the headline guarantee that append-then-query is
// bit-identical to rebuilding the table from scratch, and that appends
// land safely while queries are in flight (this suite runs under TSan
// and ASan+UBSan in CI).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "causal/estimator_context.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "dataset/csv.h"
#include "engine/eval_engine.h"
#include "service/batch.h"
#include "service/explanation_service.h"
#include "storage/file_io.h"
#include "stream/monitor.h"
#include "util/rng.h"

namespace causumx {
namespace {

// ---- Table layer -----------------------------------------------------------

Table MakeSmallTable() {
  Table t;
  t.AddColumn("cat", ColumnType::kCategorical);
  t.AddColumn("num", ColumnType::kInt64);
  t.AddColumn("val", ColumnType::kDouble);
  t.AddRow({Value("a"), Value(int64_t{1}), Value(1.5)});
  t.AddRow({Value("b"), Value(int64_t{2}), Value(2.5)});
  return t;
}

TEST(TableAppendTest, AppendRowsGrowsDictionariesAndVersions) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.version(), 0u);
  t.AppendRows({
      {Value("c"), Value(int64_t{3}), Value()},        // new dict value, null
      {Value(), Value(), Value(3.5)},                  // nulls everywhere else
      {Value("a"), Value(int64_t{4}), Value(4.5)},     // existing dict value
  });
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.version(), 1u);
  EXPECT_EQ(t.column("cat").dictionary().size(), 3u);
  EXPECT_EQ(t.column("cat").GetValue(2).AsString(), "c");
  EXPECT_TRUE(t.column("val").IsNull(2));
  EXPECT_TRUE(t.column("cat").IsNull(3));
  EXPECT_EQ(t.column("cat").GetCode(4), t.column("cat").GetCode(0));
  EXPECT_EQ(t.column("num").NumDistinct(), 4u);  // cache invalidated

  t.AppendRows({{Value("d"), Value(int64_t{5}), Value(5.5)}});
  EXPECT_EQ(t.version(), 2u);  // one bump per batch
}

TEST(TableAppendTest, AppendRowsValidatesAtomically) {
  Table t = MakeSmallTable();
  // Arity mismatch in the second row: nothing may land.
  EXPECT_THROW(t.AppendRows({{Value("c"), Value(int64_t{3}), Value(3.5)},
                             {Value("d"), Value(int64_t{4})}}),
               std::invalid_argument);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.version(), 0u);
  EXPECT_EQ(t.column("cat").dictionary().size(), 2u);

  // String into a numeric column is rejected up front.
  EXPECT_THROW(t.AppendRows({{Value("c"), Value("not-a-number"), Value()}}),
               std::invalid_argument);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableAppendTest, CloneIsIndependent) {
  Table t = MakeSmallTable();
  t.AppendRows({{Value("c"), Value(int64_t{3}), Value(3.5)}});
  Table copy = t.Clone();
  EXPECT_EQ(copy.NumRows(), 3u);
  EXPECT_EQ(copy.version(), 1u);
  copy.AppendRows({{Value("d"), Value(int64_t{4}), Value(4.5)}});
  EXPECT_EQ(copy.NumRows(), 4u);
  EXPECT_EQ(copy.version(), 2u);
  EXPECT_EQ(t.NumRows(), 3u);  // original untouched
  EXPECT_EQ(t.version(), 1u);
  EXPECT_EQ(t.column("cat").dictionary().size(), 3u);
  EXPECT_EQ(copy.column("cat").dictionary().size(), 4u);
}

TEST(TableAppendTest, CsvDeltaParsesAgainstSchemaInAnyColumnOrder) {
  const Table t = MakeSmallTable();
  std::istringstream delta(
      "val,cat,num\n"
      "9.5,c,7\n"
      "NA,a,NA\n");
  const auto rows = ReadCsvDelta(t, delta);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "c");   // schema order restored
  EXPECT_EQ(rows[0][1].AsInt(), 7);
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 9.5);
  EXPECT_TRUE(rows[1][1].is_null());
  EXPECT_TRUE(rows[1][2].is_null());
}

TEST(TableAppendTest, CsvDeltaRejectsSchemaViolations) {
  const Table t = MakeSmallTable();
  std::istringstream bad_header("cat,num\n" "a,1\n");
  EXPECT_THROW(ReadCsvDelta(t, bad_header), std::runtime_error);
  std::istringstream unknown("cat,num,other\n" "a,1,2\n");
  EXPECT_THROW(ReadCsvDelta(t, unknown), std::runtime_error);
  std::istringstream dup("cat,num,num\n" "a,1,2\n");
  EXPECT_THROW(ReadCsvDelta(t, dup), std::runtime_error);
  // Unparsable numeric cells throw — the schema is fixed, so the reader
  // must not silently null them the way inference-time demotion would.
  std::istringstream bad_cell("cat,num,val\n" "a,oops,1.5\n");
  EXPECT_THROW(ReadCsvDelta(t, bad_cell), std::runtime_error);
}

// ---- Engine layer ----------------------------------------------------------

struct EngineWorld {
  std::shared_ptr<Table> table;
  std::vector<SimplePredicate> atoms;
};

EngineWorld MakeEngineWorld(uint64_t seed, size_t rows) {
  EngineWorld w;
  Rng rng(seed);
  w.table = std::make_shared<Table>();
  w.table->AddColumn("c", ColumnType::kCategorical);
  w.table->AddColumn("i", ColumnType::kInt64);
  w.table->AddColumn("d", ColumnType::kDouble);
  const char* cats[] = {"x", "y", "z"};
  for (size_t r = 0; r < rows; ++r) {
    w.table->AddRow(
        {rng.NextBool(0.05) ? Value() : Value(cats[rng.NextBounded(3)]),
         rng.NextBool(0.05) ? Value() : Value(rng.NextInt(0, 9)),
         rng.NextBool(0.05) ? Value() : Value(rng.NextGaussian())});
  }
  w.atoms = {
      SimplePredicate("c", CompareOp::kEq, Value("x")),
      SimplePredicate("c", CompareOp::kEq, Value("y")),
      // Absent from the base dictionary; only delta rows may introduce it.
      SimplePredicate("c", CompareOp::kEq, Value("w")),
      SimplePredicate("i", CompareOp::kLt, Value(int64_t{5})),
      SimplePredicate("d", CompareOp::kGt, Value(0.0)),
  };
  return w;
}

std::vector<std::vector<Value>> MakeDelta(uint64_t seed, size_t rows) {
  Rng rng(seed);
  std::vector<std::vector<Value>> delta;
  const char* cats[] = {"x", "y", "w"};  // "w" is new to the dictionary
  for (size_t r = 0; r < rows; ++r) {
    delta.push_back(
        {rng.NextBool(0.1) ? Value() : Value(cats[rng.NextBounded(3)]),
         rng.NextBool(0.1) ? Value() : Value(rng.NextInt(0, 9)),
         rng.NextBool(0.1) ? Value() : Value(rng.NextGaussian())});
  }
  return delta;
}

TEST(EngineExtensionTest, ExtendedBitsetsMatchFreshEngine) {
  EngineWorld w = MakeEngineWorld(17, 300);
  auto base_engine =
      std::make_shared<EvalEngine>(std::shared_ptr<const Table>(w.table));
  // Materialize every atom on the base, including the absent-constant one
  // (an all-zero bitset until "w" arrives with the delta).
  for (const auto& a : w.atoms) {
    base_engine->PredicateBits(base_engine->Intern(a));
  }

  Table g = w.table->Clone();
  g.AppendRows(MakeDelta(18, 60));
  auto grown = std::make_shared<const Table>(std::move(g));
  EvalEngine extended(grown, *base_engine);
  EvalEngine fresh(grown);

  EXPECT_EQ(extended.Stats().bitsets_extended, w.atoms.size());
  for (const auto& a : w.atoms) {
    const Pattern p({a});
    EXPECT_TRUE(extended.Evaluate(p) == fresh.Evaluate(p))
        << a.ToString();
  }
  // Conjunctions across extended atoms agree too.
  const Pattern conj({w.atoms[0], w.atoms[3]});
  EXPECT_TRUE(extended.Evaluate(conj) == fresh.Evaluate(conj));
  // Nothing was rebuilt from scratch: every atom came from extension.
  EXPECT_EQ(extended.Stats().bitsets_materialized, 0u);
  // Numeric views extend to the new universe.
  base_engine->Numeric(2);
  EvalEngine extended2(grown, *base_engine);
  const NumericColumnView& view = extended2.Numeric(2);
  EXPECT_EQ(view.values.size(), grown->NumRows());
  EXPECT_EQ(extended2.Stats().column_views_extended, 1u);
  for (size_t r = 0; r < grown->NumRows(); ++r) {
    if (grown->column(2).IsNull(r)) {
      EXPECT_FALSE(view.valid.Test(r));
    } else {
      EXPECT_EQ(view.values[r], grown->column(2).GetNumeric(r));
    }
  }
}

TEST(EngineExtensionTest, PreservesInternedIdsAndEvictedSlots) {
  EngineWorld w = MakeEngineWorld(23, 200);
  auto base_engine =
      std::make_shared<EvalEngine>(std::shared_ptr<const Table>(w.table));
  std::vector<PredicateId> ids;
  for (const auto& a : w.atoms) ids.push_back(base_engine->Intern(a));
  base_engine->PredicateBits(ids[0]);
  base_engine->PredicateBits(ids[1]);
  // Evict everything: extension must carry the interning but not revive
  // evicted bitsets.
  base_engine->EvictLru(base_engine->CacheBytes());

  Table g = w.table->Clone();
  g.AppendRows(MakeDelta(24, 40));
  auto grown = std::make_shared<const Table>(std::move(g));
  EvalEngine extended(grown, *base_engine);
  EXPECT_EQ(extended.Stats().bitsets_extended, 0u);
  EXPECT_EQ(extended.NumInterned(), w.atoms.size());
  for (size_t i = 0; i < w.atoms.size(); ++i) {
    EXPECT_EQ(extended.Intern(w.atoms[i]), ids[i]);
  }
  // Evicted slots rematerialize over the full grown table on demand.
  EvalEngine fresh(grown);
  for (size_t i = 0; i < w.atoms.size(); ++i) {
    EXPECT_TRUE(*extended.PredicateBits(ids[i]) ==
                *fresh.PredicateBits(fresh.Intern(w.atoms[i])));
  }
}

TEST(EngineExtensionTest, RejectsNonExtension) {
  EngineWorld w = MakeEngineWorld(29, 100);
  auto engine =
      std::make_shared<EvalEngine>(std::shared_ptr<const Table>(w.table));
  auto smaller = std::make_shared<const Table>(
      w.table->SelectRows({0, 1, 2}));
  EXPECT_THROW(EvalEngine(smaller, *engine), std::invalid_argument);
}

// ---- Estimator-context migration -------------------------------------------

TEST(ContextMigrationTest, UntouchedSubpopulationsHitTheMemo) {
  // Two subpopulations (G=a, G=b); the delta only adds G=b rows. After
  // migration, a CATE over G=a re-interns to the same zero-extended
  // subpopulation and must be a memo hit with a bit-identical estimate,
  // while G=b grew and must recompute.
  Rng rng(31);
  auto table = std::make_shared<Table>();
  table->AddColumn("G", ColumnType::kCategorical);
  table->AddColumn("T", ColumnType::kInt64);
  table->AddColumn("Y", ColumnType::kDouble);
  for (size_t r = 0; r < 240; ++r) {
    const int64_t treat = rng.NextBool(0.5) ? 1 : 0;
    table->AddRow({Value(rng.NextBool(0.5) ? "a" : "b"), Value(treat),
                   Value(2.0 * treat + rng.NextGaussian())});
  }
  CausalDag dag;
  dag.AddNode("T");
  dag.AddNode("Y");
  dag.AddEdge("T", "Y");

  auto engine =
      std::make_shared<EvalEngine>(std::shared_ptr<const Table>(table));
  auto ctx = std::make_shared<EstimatorContext>(engine, dag,
                                                EstimatorOptions{});
  const Pattern treatment(
      {SimplePredicate("T", CompareOp::kEq, Value(int64_t{1}))});
  const Pattern in_a({SimplePredicate("G", CompareOp::kEq, Value("a"))});
  const Pattern in_b({SimplePredicate("G", CompareOp::kEq, Value("b"))});
  const EffectEstimate a_before =
      ctx->EstimateCate(treatment, "Y", engine->Evaluate(in_a));
  ctx->EstimateCate(treatment, "Y", engine->Evaluate(in_b));
  ASSERT_TRUE(a_before.valid);

  std::vector<std::vector<Value>> delta;
  for (size_t r = 0; r < 60; ++r) {
    const int64_t treat = rng.NextBool(0.5) ? 1 : 0;
    delta.push_back({Value("b"), Value(treat),
                     Value(2.0 * treat + rng.NextGaussian())});
  }
  Table g = table->Clone();
  g.AppendRows(delta);
  auto grown = std::make_shared<const Table>(std::move(g));
  auto engine2 = std::make_shared<EvalEngine>(grown, *engine);
  auto ctx2 = std::make_shared<EstimatorContext>(engine2, *ctx);
  EXPECT_EQ(ctx2->Stats().memo_migrated, 2u);

  const EffectEstimate a_after =
      ctx2->EstimateCate(treatment, "Y", engine2->Evaluate(in_a));
  EXPECT_EQ(ctx2->Stats().memo_hits, 1u);  // untouched -> served warm
  EXPECT_EQ(a_after.cate, a_before.cate);
  EXPECT_EQ(a_after.std_error, a_before.std_error);
  EXPECT_EQ(a_after.n_used, a_before.n_used);

  const EffectEstimate b_after =
      ctx2->EstimateCate(treatment, "Y", engine2->Evaluate(in_b));
  EXPECT_EQ(ctx2->Stats().memo_hits, 1u);  // grew -> recomputed
  EXPECT_EQ(ctx2->Stats().memo_misses, 1u);
  // The recomputation matches a cold context over the grown table.
  EstimatorContext cold(engine2, dag, EstimatorOptions{});
  const EffectEstimate b_cold =
      cold.EstimateCate(treatment, "Y", engine2->Evaluate(in_b));
  EXPECT_EQ(b_after.cate, b_cold.cate);
  EXPECT_EQ(b_after.n_used, b_cold.n_used);
}

// ---- Service layer ---------------------------------------------------------

GeneratedDataset MakeData(size_t rows = 1500) {
  SyntheticOptions opt;
  opt.num_rows = rows;
  opt.num_treatment_attrs = 4;
  return MakeSyntheticDataset(opt);
}

CauSumXConfig MakeConfig(const GeneratedDataset& ds) {
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  return config;
}

TEST(ServiceAppendTest, AppendThenQueryBitIdenticalToRebuild) {
  GeneratedDataset ds = MakeData();
  const CauSumXConfig config = MakeConfig(ds);
  const size_t total = ds.table.NumRows();
  const size_t base_rows = (total * 4) / 5;

  // Reference: the full table, registered from scratch.
  ExplanationService reference;
  reference.RegisterTable("t", ds.table.Head(total));
  const std::string expected = SummaryToJson(
      reference.Explain("t", ds.default_query, ds.dag, config).summary);

  // Streaming: register the first 80%, warm the caches with a query,
  // then append the rest and re-query through the extended caches.
  ExplanationService service;
  service.RegisterTable("t", ds.table.Head(base_rows));
  service.Explain("t", ds.default_query, ds.dag, config);
  EXPECT_EQ(service.TableVersion("t"), 0u);

  service.Append("t", ds.table.MaterializeRows(base_rows, total));
  EXPECT_EQ(service.TableVersion("t"), 1u);
  EXPECT_EQ(service.GetTable("t")->NumRows(), total);
  EXPECT_EQ(service.Stats().appends_executed, 1u);
  EXPECT_EQ(service.Stats().rows_appended, total - base_rows);

  const CauSumXResult incremental =
      service.Explain("t", ds.default_query, ds.dag, config);
  EXPECT_EQ(SummaryToJson(incremental.summary), expected);

  // The warm path actually ran warm: bitsets were extended (not rebuilt)
  // and the migrated memo carried entries across the append.
  const EvalEngineStats engine_stats = service.Engine("t")->Stats();
  EXPECT_GT(engine_stats.bitsets_extended, 0u);
  EXPECT_GT(incremental.cache_stats.estimator.memo_migrated, 0u);
}

TEST(ServiceAppendTest, RepeatedAppendsStayConsistent) {
  GeneratedDataset ds = MakeData(1200);
  const CauSumXConfig config = MakeConfig(ds);
  const size_t total = ds.table.NumRows();
  const size_t base_rows = total / 2;

  ExplanationService service;
  service.RegisterTable("t", ds.table.Head(base_rows));
  const size_t chunk = (total - base_rows) / 3;
  size_t at = base_rows;
  for (int i = 0; i < 3; ++i) {
    const size_t next = (i == 2) ? total : at + chunk;
    service.Append("t", ds.table.MaterializeRows(at, next));
    at = next;
    // Each version answers exactly like a from-scratch registration.
    ExplanationService fresh;
    fresh.RegisterTable("t", ds.table.Head(at));
    EXPECT_EQ(
        SummaryToJson(
            service.Explain("t", ds.default_query, ds.dag, config).summary),
        SummaryToJson(
            fresh.Explain("t", ds.default_query, ds.dag, config).summary))
        << "after append " << i;
  }
  EXPECT_EQ(service.TableVersion("t"), 3u);
}

TEST(ServiceAppendTest, UnknownTableAndEmptyDelta) {
  ExplanationService service;
  EXPECT_THROW(service.Append("nope", {}), std::out_of_range);
  GeneratedDataset ds = MakeData(600);
  service.RegisterTable("t", std::move(ds.table));
  // An empty delta is a legal (if pointless) append: version still bumps.
  service.Append("t", {});
  EXPECT_EQ(service.TableVersion("t"), 1u);
}

TEST(ServiceAppendTest, ConcurrentAppendsAndQueriesStayConsistent) {
  // Appends land while queries are in flight: every query must return a
  // result that is bit-identical to some snapshot version's from-scratch
  // answer (copy-on-write isolation), and the final state must equal the
  // fully-grown reference. Run under TSan in CI.
  GeneratedDataset ds = MakeData(1000);
  const CauSumXConfig config = MakeConfig(ds);
  const size_t total = ds.table.NumRows();
  const size_t base_rows = (total * 3) / 4;
  const size_t chunk = (total - base_rows) / 2;

  // Expected summaries for each version the table can be observed at.
  std::vector<std::string> expected;
  for (const size_t rows : {base_rows, base_rows + chunk, total}) {
    ExplanationService fresh;
    fresh.RegisterTable("t", ds.table.Head(rows));
    expected.push_back(SummaryToJson(
        fresh.Explain("t", ds.default_query, ds.dag, config).summary));
  }

  ExplanationService service;
  service.RegisterTable("t", ds.table.Head(base_rows));
  std::atomic<bool> start{false};

  std::vector<std::future<std::string>> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(std::async(std::launch::async, [&] {
      while (!start.load()) std::this_thread::yield();
      CauSumXConfig c = config;
      c.num_threads = 1;
      std::string last;
      for (int q = 0; q < 3; ++q) {
        last = SummaryToJson(
            service.Explain("t", ds.default_query, ds.dag, c).summary);
      }
      return last;
    }));
  }
  std::thread appender([&] {
    start.store(true);
    service.Append("t", ds.table.MaterializeRows(base_rows, base_rows + chunk));
    service.Append("t", ds.table.MaterializeRows(base_rows + chunk, total));
  });
  for (auto& q : queries) {
    const std::string got = q.get();
    EXPECT_TRUE(got == expected[0] || got == expected[1] ||
                got == expected[2])
        << "query result matches no snapshot version";
  }
  appender.join();

  EXPECT_EQ(service.TableVersion("t"), 2u);
  CauSumXConfig c = config;
  EXPECT_EQ(SummaryToJson(
                service.Explain("t", ds.default_query, ds.dag, c).summary),
            expected[2]);
}

// Sharded variant of the above: appends land mid-query while the table's
// engine runs a multi-shard plan on the shared pool. The delta extension
// must keep shard boundaries stable (clean shards share segments with
// the pre-append engine) and every concurrent query must still match a
// snapshot version bit for bit. Run under TSan in CI.
TEST(ServiceAppendTest, ShardedAppendMidQueryStaysConsistent) {
  GeneratedDataset ds = MakeData(1200);
  const CauSumXConfig config = MakeConfig(ds);
  const size_t total = ds.table.NumRows();
  const size_t base_rows = (total * 3) / 4;

  ServiceOptions sharded;
  sharded.num_shards = 6;
  sharded.num_threads = 3;

  std::vector<std::string> expected;
  for (const size_t rows : {base_rows, total}) {
    ExplanationService fresh(sharded);
    fresh.RegisterTable("t", ds.table.Head(rows));
    expected.push_back(SummaryToJson(
        fresh.Explain("t", ds.default_query, ds.dag, config).summary));
  }

  ExplanationService service(sharded);
  service.RegisterTable("t", ds.table.Head(base_rows));
  const ShardPlan base_plan = service.Engine("t")->plan();
  service.Explain("t", ds.default_query, ds.dag, config);  // warm caches
  std::atomic<bool> start{false};

  std::vector<std::future<std::string>> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(std::async(std::launch::async, [&] {
      while (!start.load()) std::this_thread::yield();
      CauSumXConfig c = config;
      c.num_threads = 1;
      std::string last;
      for (int q = 0; q < 2; ++q) {
        last = SummaryToJson(
            service.Explain("t", ds.default_query, ds.dag, c).summary);
      }
      return last;
    }));
  }
  std::thread appender([&] {
    start.store(true);
    service.Append("t", ds.table.MaterializeRows(base_rows, total));
  });
  for (auto& q : queries) {
    const std::string got = q.get();
    EXPECT_TRUE(got == expected[0] || got == expected[1])
        << "query result matches no snapshot version";
  }
  appender.join();

  // Shard size survived the append (boundaries of clean shards stable),
  // the shard count grew with the rows, and segments were carried.
  const ShardPlan grown_plan = service.Engine("t")->plan();
  EXPECT_EQ(grown_plan.shard_rows(), base_plan.shard_rows());
  EXPECT_GE(grown_plan.NumShards(), base_plan.NumShards());
  EXPECT_GT(service.Engine("t")->Stats().bitsets_extended, 0u);
  EXPECT_EQ(SummaryToJson(
                service.Explain("t", ds.default_query, ds.dag, config)
                    .summary),
            expected[1]);
}

// ---- Batch layer -----------------------------------------------------------

TEST(BatchAppendTest, AppendOpIsABarrierBetweenQueries) {
  GeneratedDataset ds = MakeData(800);
  const size_t total = ds.table.NumRows();
  const size_t base_rows = (total * 4) / 5;

  ExplanationService service;
  service.RegisterTable("sales", ds.table.Head(base_rows));

  // JSON rows for the delta, in schema order.
  std::ostringstream rows_json;
  rows_json << "[";
  const auto delta = ds.table.MaterializeRows(base_rows, total);
  for (size_t i = 0; i < delta.size(); ++i) {
    if (i) rows_json << ",";
    rows_json << "[";
    for (size_t c = 0; c < delta[i].size(); ++c) {
      if (c) rows_json << ",";
      const Value& v = delta[i][c];
      if (v.is_null()) {
        rows_json << "null";
      } else if (v.is_string()) {
        rows_json << "\"" << v.AsString() << "\"";
      } else {
        rows_json << v.ToString();
      }
    }
    rows_json << "]";
  }
  rows_json << "]";

  const std::string query_line =
      std::string("{\"table\":\"sales\",\"group_by\":\"") +
      ds.default_query.group_by[0] + "\",\"avg\":\"" +
      ds.default_query.avg_attribute + "\",\"num_threads\":1}";
  std::istringstream in(
      query_line + "\n" +
      "{\"op\":\"append\",\"table\":\"sales\",\"rows\":" + rows_json.str() +
      "}\n" + query_line + "\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(service, in, out);
  EXPECT_EQ(summary.requests, 3u);
  EXPECT_EQ(summary.failed, 0u) << out.str();

  std::vector<std::string> lines;
  std::istringstream parse(out.str());
  for (std::string line; std::getline(parse, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"op\":\"append\""), std::string::npos);
  EXPECT_NE(lines[1].find(
                "\"rows_appended\":" + std::to_string(total - base_rows)),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"version\":1"), std::string::npos);
  EXPECT_EQ(service.GetTable("sales")->NumRows(), total);
}

TEST(BatchAppendTest, AppendErrorsAreReportedPerLine) {
  ExplanationService service;
  std::istringstream in(
      "{\"op\":\"append\",\"table\":\"ghost\",\"rows\":[]}\n"
      "{\"op\":\"frobnicate\"}\n");
  std::ostringstream out;
  const BatchSummary summary = RunBatch(service, in, out);
  EXPECT_EQ(summary.requests, 2u);
  EXPECT_EQ(summary.failed, 2u);
  EXPECT_NE(out.str().find("unknown table"), std::string::npos);
  EXPECT_NE(out.str().find("unknown op"), std::string::npos);
}

// ---- Windowed-monitor concurrency soak -------------------------------------

// Runs under TSan in CI: concurrent appender threads drive a sliding-
// window monitor (so rows expire and the retract path runs) through the
// registry's append observer with snapshot-on-append enabled, while
// long-poll subscriber threads tail the event stream and status readers
// poll concurrently. Every subscriber must observe every event seq
// exactly once with no gaps or duplicates.
TEST(MonitorConcurrencyTest, SoakAppendsLongPollAndSnapshots) {
  struct TempDir {
    std::string path;
    TempDir() {
      char buf[] = "/tmp/causumx_soak_XXXXXX";
      path = ::mkdtemp(buf);
    }
    ~TempDir() {
      for (const std::string& f : ListDirFiles(path)) {
        ::unlink((path + "/" + f).c_str());
      }
      ::rmdir(path.c_str());
    }
  } dir;

  Table schema;
  schema.AddColumn("grp", ColumnType::kCategorical);
  schema.AddColumn("trt", ColumnType::kCategorical);
  schema.AddColumn("val", ColumnType::kDouble);

  ServiceOptions options;
  options.data_dir = dir.path;
  ExplanationService service(options);
  service.RegisterTable("t", std::make_shared<const Table>(schema.Clone()));

  MonitorRegistryOptions registry_options;
  registry_options.snapshot_on_append = true;
  MonitorRegistry registry(service, registry_options);
  const auto monitor = registry.Create(
      "{\"table\":\"t\",\"group_by\":[\"grp\"],\"avg\":\"val\","
      "\"dag_text\":\"trt -> val\\n\",\"grouping_attrs\":[\"grp\"],"
      "\"treatment_attrs\":[\"trt\"],\"alpha\":0.99,\"min_group_size\":3,"
      "\"support\":0.1,\"num_shards\":3,\"compression\":\"always\","
      "\"emit_summaries\":true,"
      "\"window\":{\"kind\":\"sliding\",\"size_rows\":40,"
      "\"slide_rows\":20}}");

  constexpr int kAppenders = 3;
  constexpr int kBatchesPerAppender = 12;
  constexpr int kRowsPerBatch = 15;
  std::atomic<uint64_t> final_seq{~uint64_t{0}};

  auto subscriber = [&]() {
    uint64_t since = 0;
    while (true) {
      for (const MonitorEvent& e : monitor->WaitEventsSince(since, 25)) {
        // Contiguous and duplicate-free: each delivered seq is exactly
        // the successor of the last one this subscriber saw.
        EXPECT_EQ(e.seq, since + 1) << "lost or duplicated event";
        since = e.seq;
      }
      const uint64_t target = final_seq.load(std::memory_order_acquire);
      if (target != ~uint64_t{0} && since >= target) break;
    }
    EXPECT_EQ(since, final_seq.load(std::memory_order_acquire));
  };
  auto status_reader = [&]() {
    while (final_seq.load(std::memory_order_acquire) == ~uint64_t{0}) {
      const MonitorStatus s = monitor->Status();
      EXPECT_LE(s.window_rows, 60u);  // never beyond window + slide
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(subscriber);
  threads.emplace_back(status_reader);

  std::vector<std::thread> appenders;
  for (int a = 0; a < kAppenders; ++a) {
    appenders.emplace_back([&, a]() {
      Rng rng(1000 + a);
      const char* groups[] = {"g1", "g2", "g3"};
      for (int b = 0; b < kBatchesPerAppender; ++b) {
        std::vector<std::vector<Value>> rows;
        for (int r = 0; r < kRowsPerBatch; ++r) {
          const bool treated = rng.NextBool(0.5);
          rows.push_back({Value(groups[rng.NextBounded(3)]),
                          Value(treated ? "hi" : "lo"),
                          Value((treated ? 8.0 : 1.0) + rng.NextDouble())});
        }
        service.Append("t", rows);
      }
    });
  }
  for (auto& t : appenders) t.join();
  final_seq.store(monitor->Status().last_seq, std::memory_order_release);
  for (auto& t : threads) t.join();

  // Append delivery is serialized, so windows land at every slide
  // boundary of the total row count.
  const size_t total = kAppenders * kBatchesPerAppender * kRowsPerBatch;
  const MonitorStatus s = monitor->Status();
  EXPECT_EQ(s.rows_observed, total);
  EXPECT_EQ(s.windows_evaluated, (total - 40) / 20 + 1);
  EXPECT_EQ(s.last_seq, s.windows_evaluated);  // one summary per window
  // snapshot_on_append persisted the registry; a fresh registry can
  // restore the monitor from it.
  ExplanationService fresh(options);
  fresh.RegisterTable("t", std::make_shared<const Table>(schema.Clone()));
  MonitorRegistry restored(fresh);
  EXPECT_EQ(restored.RestoreMonitors(), 1u);
  EXPECT_EQ(restored.Get(monitor->id())->Status().rows_observed, total);
}

}  // namespace
}  // namespace causumx
