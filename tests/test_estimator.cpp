// Unit tests for the ATE/CATE estimator — the causal core of the system.
// Validates recovery of known effects under randomized treatment, under
// confounding (where the DAG-driven adjustment is essential), and the
// overlap / sampling behaviors.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimator.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Confounded world: Z ~ Bernoulli(0.5); T more likely when Z = 1;
// Y = effect * T + 10 * Z + noise. Naive difference-in-means is biased
// upward; adjusting for Z recovers `effect`.
Table MakeConfoundedTable(double effect, size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("Z", ColumnType::kCategorical);
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool z = rng.NextBool(0.5);
    const bool treated = rng.NextBool(z ? 0.8 : 0.2);
    const double y = effect * (treated ? 1.0 : 0.0) + 10.0 * (z ? 1.0 : 0.0) +
                     rng.NextGaussian(0, 1.0);
    t.AddRow({Value(z ? "1" : "0"), Value(treated ? "yes" : "no"), Value(y)});
  }
  return t;
}

CausalDag MakeConfoundedDag() {
  CausalDag g;
  g.AddEdge("Z", "T");
  g.AddEdge("Z", "Y");
  g.AddEdge("T", "Y");
  return g;
}

Pattern TreatYes() {
  return Pattern({SimplePredicate("T", CompareOp::kEq, Value("yes"))});
}

TEST(EstimatorTest, RandomizedTreatmentAteRecovered) {
  Table t;
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(3);
  for (size_t i = 0; i < 4000; ++i) {
    const bool treated = rng.NextBool(0.5);
    t.AddRow({Value(treated ? "yes" : "no"),
              Value(3.0 * (treated ? 1.0 : 0.0) + rng.NextGaussian())});
  }
  CausalDag g;
  g.AddEdge("T", "Y");
  EffectEstimator est(t, g);
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.cate, 3.0, 0.15);
  EXPECT_LT(e.p_value, 1e-6);
}

TEST(EstimatorTest, ConfoundingBiasRemovedByAdjustment) {
  const Table t = MakeConfoundedTable(2.0, 6000, 5);
  // With the correct DAG: adjusted estimate ~ 2.0.
  EffectEstimator adjusted(t, MakeConfoundedDag());
  const EffectEstimate good = adjusted.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(good.valid);
  EXPECT_NEAR(good.cate, 2.0, 0.25);

  // With an empty DAG (no recorded parents): naive difference, badly
  // biased by the +10 Z effect concentrated among the treated.
  CausalDag empty;
  empty.AddEdge("T", "Y");
  EffectEstimator naive(t, empty);
  const EffectEstimate biased = naive.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(biased.valid);
  EXPECT_GT(biased.cate, 5.0);  // ~2 + 6 of confounding bias
}

TEST(EstimatorTest, AdjustmentSetComesFromDag) {
  const Table t = MakeConfoundedTable(1.0, 100, 7);
  EffectEstimator est(t, MakeConfoundedDag());
  const auto z = est.AdjustmentSet(TreatYes(), "Y");
  ASSERT_EQ(z.size(), 1u);
  EXPECT_TRUE(z.count("Z"));
}

TEST(EstimatorTest, CateDiffersAcrossSubpopulations) {
  // Effect is +4 inside group A, -4 inside group B.
  Table t;
  t.AddColumn("grp", ColumnType::kCategorical);
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(9);
  for (size_t i = 0; i < 4000; ++i) {
    const bool in_a = i % 2 == 0;
    const bool treated = rng.NextBool(0.5);
    const double effect = in_a ? 4.0 : -4.0;
    t.AddRow({Value(in_a ? "A" : "B"), Value(treated ? "yes" : "no"),
              Value(effect * (treated ? 1.0 : 0.0) + rng.NextGaussian())});
  }
  CausalDag g;
  g.AddEdge("T", "Y");
  EffectEstimator est(t, g);
  const Pattern in_a({SimplePredicate("grp", CompareOp::kEq, Value("A"))});
  const Pattern in_b({SimplePredicate("grp", CompareOp::kEq, Value("B"))});
  const EffectEstimate ea = est.EstimateCate(TreatYes(), "Y", in_a);
  const EffectEstimate eb = est.EstimateCate(TreatYes(), "Y", in_b);
  ASSERT_TRUE(ea.valid && eb.valid);
  EXPECT_NEAR(ea.cate, 4.0, 0.2);
  EXPECT_NEAR(eb.cate, -4.0, 0.2);
}

TEST(EstimatorTest, OverlapViolationInvalidates) {
  // Everyone treated: no control group.
  Table t;
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  for (size_t i = 0; i < 100; ++i) {
    t.AddRow({Value("yes"), Value(1.0)});
  }
  CausalDag g;
  g.AddEdge("T", "Y");
  EffectEstimator est(t, g);
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  EXPECT_FALSE(e.valid);
}

TEST(EstimatorTest, TinySubpopulationInvalid) {
  const Table t = MakeConfoundedTable(1.0, 1000, 11);
  EffectEstimator est(t, MakeConfoundedDag());
  Bitset tiny(t.NumRows());
  for (size_t i = 0; i < 5; ++i) tiny.Set(i);
  const EffectEstimate e = est.EstimateCate(TreatYes(), "Y", tiny);
  EXPECT_FALSE(e.valid);
}

TEST(EstimatorTest, EmptyTreatmentInvalid) {
  const Table t = MakeConfoundedTable(1.0, 200, 13);
  EffectEstimator est(t, MakeConfoundedDag());
  EXPECT_FALSE(est.EstimateAte(Pattern(), "Y").valid);
}

TEST(EstimatorTest, SamplingApproximatesFullEstimate) {
  const Table t = MakeConfoundedTable(2.5, 20000, 15);
  EstimatorOptions full_opt;
  full_opt.sample_cap = 0;
  EstimatorOptions sampled_opt;
  sampled_opt.sample_cap = 4000;
  EffectEstimator full(t, MakeConfoundedDag(), full_opt);
  EffectEstimator sampled(t, MakeConfoundedDag(), sampled_opt);
  const EffectEstimate ef = full.EstimateAte(TreatYes(), "Y");
  const EffectEstimate es = sampled.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(ef.valid && es.valid);
  EXPECT_LE(es.n_used, 4000u);
  EXPECT_NEAR(ef.cate, es.cate, 0.3);
}

TEST(EstimatorTest, MultiPredicateTreatment) {
  // Y jumps only when both conditions hold.
  Table t;
  t.AddColumn("A", ColumnType::kCategorical);
  t.AddColumn("B", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(17);
  for (size_t i = 0; i < 4000; ++i) {
    const bool a = rng.NextBool(0.5);
    const bool b = rng.NextBool(0.5);
    const double y = (a && b ? 5.0 : 0.0) + rng.NextGaussian();
    t.AddRow({Value(a ? "1" : "0"), Value(b ? "1" : "0"), Value(y)});
  }
  CausalDag g;
  g.AddEdge("A", "Y");
  g.AddEdge("B", "Y");
  EffectEstimator est(t, g);
  const Pattern both({SimplePredicate("A", CompareOp::kEq, Value("1")),
                      SimplePredicate("B", CompareOp::kEq, Value("1"))});
  const EffectEstimate e = est.EstimateAte(both, "Y");
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.cate, 5.0, 0.3);
}

// Parameterized recovery sweep: across a grid of true effect sizes, the
// adjusted estimate must land within 3 standard errors of the truth.
class EffectGridSweep : public ::testing::TestWithParam<double> {};

TEST_P(EffectGridSweep, RecoversEffectWithinThreeSigma) {
  const double truth = GetParam();
  const Table t = MakeConfoundedTable(truth, 5000, 21);
  EffectEstimator est(t, MakeConfoundedDag());
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.cate, truth, 3.0 * e.std_error + 1e-9);
  if (std::fabs(truth) >= 1.0) {
    EXPECT_TRUE(e.Significant());
  }
}

INSTANTIATE_TEST_SUITE_P(Effects, EffectGridSweep,
                         ::testing::Values(-5.0, -2.0, -1.0, 0.0, 1.0, 2.0,
                                           5.0, 10.0));

TEST(EstimatorTest, DeterministicAcrossRuns) {
  const Table t = MakeConfoundedTable(2.0, 5000, 19);
  EstimatorOptions opt;
  opt.sample_cap = 1000;
  EffectEstimator est(t, MakeConfoundedDag(), opt);
  const EffectEstimate e1 = est.EstimateAte(TreatYes(), "Y");
  const EffectEstimate e2 = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e1.valid && e2.valid);
  EXPECT_DOUBLE_EQ(e1.cate, e2.cate);
  EXPECT_DOUBLE_EQ(e1.p_value, e2.p_value);
}

}  // namespace
}  // namespace causumx
