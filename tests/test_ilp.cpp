// Unit tests for the branch-and-bound binary ILP solver.

#include <gtest/gtest.h>

#include "lp/ilp.h"

namespace causumx {
namespace {

TEST(IlpTest, BinaryKnapsack) {
  // max 6a + 5b + 4c s.t. 3a + 2b + 2c <= 4 -> b + c = 9 beats a alone.
  LinearProgram lp;
  lp.objective = {6, 5, 4};
  lp.upper_bounds = {1, 1, 1};
  lp.AddRow({3, 2, 2}, ConstraintSense::kLe, 4);
  const IlpSolution sol = SolveBinaryIlp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 9.0, 1e-6);
  EXPECT_NEAR(sol.values[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-9);
  EXPECT_NEAR(sol.values[2], 1.0, 1e-9);
}

TEST(IlpTest, FractionalLpIntegralIlpDiffer) {
  // LP relaxation would take half of each; ILP must commit.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.upper_bounds = {1, 1};
  lp.AddRow({1, 1}, ConstraintSense::kLe, 1);
  const IlpSolution sol = SolveBinaryIlp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 1.0, 1e-6);
  EXPECT_NEAR(sol.values[0] + sol.values[1], 1.0, 1e-6);
}

TEST(IlpTest, InfeasibleReported) {
  LinearProgram lp;
  lp.objective = {1};
  lp.upper_bounds = {1};
  lp.AddRow({1}, ConstraintSense::kGe, 2);  // impossible for binary x
  const IlpSolution sol = SolveBinaryIlp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(IlpTest, EqualityConstraint) {
  // Exactly two of three variables must be one; maximize weight.
  LinearProgram lp;
  lp.objective = {3, 2, 1};
  lp.upper_bounds = {1, 1, 1};
  lp.AddRow({1, 1, 1}, ConstraintSense::kEq, 2);
  const IlpSolution sol = SolveBinaryIlp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 5.0, 1e-6);
  EXPECT_NEAR(sol.values[2], 0.0, 1e-9);
}

TEST(IlpTest, MaxCoverExact) {
  // Max-cover: 4 elements, sets {1,2}, {2,3}, {3,4}; k=2 must cover all 4.
  // Variables: g1..g3 then t1..t4.
  LinearProgram lp;
  lp.objective = {0, 0, 0, 1, 1, 1, 1};
  lp.upper_bounds.assign(7, 1.0);
  lp.AddRow({1, 1, 1, 0, 0, 0, 0}, ConstraintSense::kLe, 2);
  lp.AddRow({-1, 0, 0, 1, 0, 0, 0}, ConstraintSense::kLe, 0);
  lp.AddRow({-1, -1, 0, 0, 1, 0, 0}, ConstraintSense::kLe, 0);
  lp.AddRow({0, -1, -1, 0, 0, 1, 0}, ConstraintSense::kLe, 0);
  lp.AddRow({0, 0, -1, 0, 0, 0, 1}, ConstraintSense::kLe, 0);
  const IlpSolution sol = SolveBinaryIlp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 4.0, 1e-6);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-6);  // {1,2}
  EXPECT_NEAR(sol.values[2], 1.0, 1e-6);  // {3,4}
}

TEST(IlpTest, BinaryPrefixWithContinuousSuffix) {
  // First var binary, second continuous in [0, 2.5]:
  // max 2a + b s.t. a + b <= 3 -> a=1, b=2.
  LinearProgram lp;
  lp.objective = {2, 1};
  lp.upper_bounds = {1, 2.5};
  lp.AddRow({1, 1}, ConstraintSense::kLe, 3);
  const IlpSolution sol = SolveBinaryIlp(lp, 1000, /*num_binary_vars=*/1);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[1], 2.0, 1e-6);
  EXPECT_NEAR(sol.objective_value, 4.0, 1e-6);
}

TEST(IlpTest, MatchesBruteForceOnRandomInstances) {
  // Small random set-packing instances: B&B must equal exhaustive search.
  for (int seed = 0; seed < 5; ++seed) {
    const size_t n = 6;
    std::vector<double> weights(n);
    std::vector<double> costs(n);
    for (size_t j = 0; j < n; ++j) {
      weights[j] = 1.0 + ((seed * 7 + j * 13) % 10);
      costs[j] = 1.0 + ((seed * 5 + j * 11) % 4);
    }
    const double budget = 6.0;
    LinearProgram lp;
    lp.objective = weights;
    lp.upper_bounds.assign(n, 1.0);
    lp.AddRow(costs, ConstraintSense::kLe, budget);
    const IlpSolution sol = SolveBinaryIlp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);

    double best = 0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      double w = 0, c = 0;
      for (size_t j = 0; j < n; ++j) {
        if (mask & (1u << j)) {
          // causumx-lint: allow(fp-accumulation) oracle, fixed subset order
          w += weights[j];
          c += costs[j];
        }
      }
      if (c <= budget) best = std::max(best, w);
    }
    EXPECT_NEAR(sol.objective_value, best, 1e-6) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace causumx
