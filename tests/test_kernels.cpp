// Differential tests for the vectorized kernel layer: every dispatch
// tier against naive references, the predicate evaluator against the
// row-at-a-time Matches path (including its degenerate cases), and the
// compressed bitset representations against plain storage. The central
// claim under test is the bit-identity contract — tier and
// representation are pure throughput/memory decisions.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/table.h"
#include "util/compressed_bitset.h"
#include "util/cpu_features.h"
#include "util/kernels.h"
#include "util/rng.h"
#include "util/stats.h"

namespace causumx {
namespace {

// Sizes that exercise empty input, sub-word, exact-word, word+1, and
// multi-word-with-tail shapes.
const size_t kSizes[] = {0, 1, 7, 63, 64, 65, 127, 128, 200, 1000, 4113};

std::vector<KernelTier> SupportedTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier t : {KernelTier::kScalar, KernelTier::kAvx2}) {
    if (KernelTierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

// RAII tier override so a failing assertion cannot leak a tier into
// later tests.
class ScopedTier {
 public:
  explicit ScopedTier(KernelTier t) : prev_(ActiveKernelTier()) {
    EXPECT_TRUE(SetKernelTier(t));
  }
  ~ScopedTier() { SetKernelTier(prev_); }

 private:
  KernelTier prev_;
};

std::vector<uint64_t> NaiveWords(size_t n, auto bit_of) {
  std::vector<uint64_t> words((n + 63) / 64, 0);
  for (size_t i = 0; i < n; ++i) {
    if (bit_of(i)) words[i / 64] |= uint64_t{1} << (i % 64);
  }
  return words;
}

TEST(CpuFeaturesTest, ScalarAlwaysSupportedAndSettable) {
  EXPECT_TRUE(KernelTierSupported(KernelTier::kScalar));
  const KernelTier initial = ActiveKernelTier();
  EXPECT_TRUE(SetKernelTier(KernelTier::kScalar));
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  if (KernelTierSupported(KernelTier::kAvx2)) {
    EXPECT_TRUE(SetKernelTier(KernelTier::kAvx2));
    EXPECT_EQ(ActiveKernelTier(), KernelTier::kAvx2);
  } else {
    EXPECT_FALSE(SetKernelTier(KernelTier::kAvx2));
    EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  }
  SetKernelTier(initial);
}

TEST(KernelsTest, CompareI32EqMatchesNaiveOnEveryTier) {
  Rng rng(1);
  for (size_t n : kSizes) {
    std::vector<int32_t> values(n);
    for (auto& v : values) {
      v = static_cast<int32_t>(rng.NextBounded(6)) - 1;  // includes -1 null
    }
    const int32_t target = 2;
    const auto expect =
        NaiveWords(n, [&](size_t i) { return values[i] == target; });
    for (KernelTier t : SupportedTiers()) {
      ScopedTier tier(t);
      std::vector<uint64_t> got((n + 63) / 64, ~uint64_t{0});
      kernels::CompareI32Eq(values.data(), n, target, got.data());
      EXPECT_EQ(got, expect) << "n=" << n << " tier=" << KernelTierName(t);
    }
  }
}

TEST(KernelsTest, CompareF64MatchesIeeeNaiveOnEveryTier) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(2);
  for (size_t n : kSizes) {
    std::vector<double> values(n);
    for (auto& v : values) {
      const uint64_t pick = rng.NextBounded(8);
      v = pick == 0 ? kNan : (static_cast<double>(rng.NextInt(-4, 4)) / 2.0);
    }
    const double rhs = 0.5;
    for (kernels::CmpOp op :
         {kernels::CmpOp::kEq, kernels::CmpOp::kLt, kernels::CmpOp::kGt,
          kernels::CmpOp::kLe, kernels::CmpOp::kGe}) {
      const auto expect = NaiveWords(n, [&](size_t i) {
        switch (op) {
          case kernels::CmpOp::kEq: return values[i] == rhs;
          case kernels::CmpOp::kLt: return values[i] < rhs;
          case kernels::CmpOp::kGt: return values[i] > rhs;
          case kernels::CmpOp::kLe: return values[i] <= rhs;
          case kernels::CmpOp::kGe: return values[i] >= rhs;
        }
        return false;
      });
      for (KernelTier t : SupportedTiers()) {
        ScopedTier tier(t);
        std::vector<uint64_t> got((n + 63) / 64, ~uint64_t{0});
        kernels::CompareF64(values.data(), n, op, rhs, got.data());
        EXPECT_EQ(got, expect) << "n=" << n << " op=" << static_cast<int>(op)
                               << " tier=" << KernelTierName(t);
      }
    }
  }
}

TEST(KernelsTest, CompareI64AsF64SkipsNullSentinel) {
  Rng rng(3);
  const size_t n = 300;
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = rng.NextBounded(10) == 0 ? Column::kNullInt : rng.NextInt(-5, 5);
  }
  const auto expect = NaiveWords(n, [&](size_t i) {
    return values[i] != Column::kNullInt &&
           static_cast<double>(values[i]) <= 1.0;
  });
  std::vector<uint64_t> got((n + 63) / 64, ~uint64_t{0});
  kernels::CompareI64AsF64(values.data(), n, kernels::CmpOp::kLe, 1.0,
                           Column::kNullInt, got.data());
  EXPECT_EQ(got, expect);
}

TEST(KernelsTest, CompareI32LutMatchesNaive) {
  Rng rng(4);
  const size_t n = 257;
  const uint8_t lut[5] = {1, 0, 1, 1, 0};
  std::vector<int32_t> values(n);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.NextBounded(6)) - 1;  // -1..4
  }
  const auto expect = NaiveWords(
      n, [&](size_t i) { return values[i] >= 0 && lut[values[i]] != 0; });
  std::vector<uint64_t> got((n + 63) / 64, ~uint64_t{0});
  kernels::CompareI32Lut(values.data(), n, lut, got.data());
  EXPECT_EQ(got, expect);
}

TEST(KernelsTest, WordOpsMatchNaiveOnEveryTier) {
  Rng rng(5);
  for (size_t nw : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                    size_t{31}, size_t{64}, size_t{129}}) {
    std::vector<uint64_t> a(nw), b(nw);
    for (size_t i = 0; i < nw; ++i) {
      a[i] = rng.NextU64();
      b[i] = rng.NextU64();
    }
    size_t pc = 0, anp = 0;
    std::vector<uint64_t> and_ref(a), or_ref(a);
    for (size_t i = 0; i < nw; ++i) {
      pc += std::popcount(a[i]);
      anp += std::popcount(a[i] & ~b[i]);
      and_ref[i] &= b[i];
      or_ref[i] |= b[i];
    }
    for (KernelTier t : SupportedTiers()) {
      ScopedTier tier(t);
      EXPECT_EQ(kernels::PopcountWords(a.data(), nw), pc);
      EXPECT_EQ(kernels::AndNotPopcount(a.data(), b.data(), nw), anp);
      std::vector<uint64_t> and_got(a), or_got(a);
      kernels::AndWords(and_got.data(), b.data(), nw);
      kernels::OrWords(or_got.data(), b.data(), nw);
      EXPECT_EQ(and_got, and_ref) << "nw=" << nw;
      EXPECT_EQ(or_got, or_ref) << "nw=" << nw;
    }
  }
}

TEST(KernelsTest, BlockedKahanSumBitIdenticalToStreamingOnEveryTier) {
  Rng rng(6);
  for (size_t n : kSizes) {
    std::vector<double> x(n);
    for (auto& v : x) {
      // Large offsets + small deltas make naive summation drift, so a
      // tier that deviated from the blocked-Kahan operation sequence
      // would produce a different bit pattern here.
      v = 1e8 + rng.NextGaussian();
    }
    BlockedKahan stream;
    for (size_t i = 0; i < n; ++i) stream.Add(i, x[i]);
    const uint64_t expect_bits = std::bit_cast<uint64_t>(stream.Sum());
    for (KernelTier t : SupportedTiers()) {
      ScopedTier tier(t);
      const double got = kernels::BlockedKahanSum(x.data(), n);
      EXPECT_EQ(std::bit_cast<uint64_t>(got), expect_bits)
          << "n=" << n << " tier=" << KernelTierName(t);
      EXPECT_EQ(std::bit_cast<uint64_t>(BlockedKahanSum(x.data(), n)),
                expect_bits);
    }
  }
}

// ---- predicate evaluator vs the row-at-a-time reference --------------------

Table MixedTable(size_t rows) {
  Table t;
  t.AddColumn("cat", ColumnType::kCategorical);
  t.AddColumn("num", ColumnType::kInt64);
  t.AddColumn("score", ColumnType::kDouble);
  Rng rng(7);
  const char* cats[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBounded(11) == 0) {
      t.column(0).AppendNull();
    } else {
      t.column(0).AppendCategorical(cats[rng.NextBounded(4)]);
    }
    if (rng.NextBounded(9) == 0) {
      t.column(1).AppendNull();
    } else {
      t.column(1).AppendInt(rng.NextInt(-20, 20));
    }
    if (rng.NextBounded(9) == 0) {
      t.column(2).AppendNull();  // NaN sentinel
    } else {
      t.column(2).AppendDouble(static_cast<double>(rng.NextInt(-8, 8)) / 4.0);
    }
  }
  return t;
}

void ExpectEvaluatorMatchesReference(const Table& t,
                                     const SimplePredicate& pred) {
  const size_t rows = t.NumRows();
  // Word-aligned and unaligned sub-ranges plus the full range.
  const std::pair<size_t, size_t> ranges[] = {
      {0, rows}, {0, rows / 2}, {64, rows}, {37, rows - 21}, {100, 100}};
  for (const auto& [begin, end] : ranges) {
    if (begin > end || end > rows) continue;
    for (KernelTier tier : SupportedTiers()) {
      ScopedTier scoped(tier);
      const Bitset got = EvaluatePredicateRange(t, pred, begin, end);
      ASSERT_EQ(got.size(), end - begin);
      for (size_t r = begin; r < end; ++r) {
        ASSERT_EQ(got.Test(r - begin), pred.Matches(t, r))
            << pred.ToString() << " row " << r << " range [" << begin << ","
            << end << ") tier " << KernelTierName(tier);
      }
    }
  }
}

TEST(EvaluatePredicateRangeTest, AgreesWithMatchesOnEveryColumnTypeAndOp) {
  const Table t = MixedTable(1000);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGt,
                       CompareOp::kLe, CompareOp::kGe}) {
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("cat", op, Value("beta")));
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("num", op, Value(int64_t{3})));
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("score", op, Value(0.5)));
    // Cross-type constants: int rhs on a double column and vice versa.
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("score", op, Value(int64_t{1})));
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("num", op, Value(2.5)));
  }
}

TEST(EvaluatePredicateRangeTest, DegenerateCasesAgreeWithMatches) {
  const Table t = MixedTable(500);
  // A dictionary miss (no row ever matches kEq; ordered ops still compare
  // lexicographically against every dictionary entry).
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe}) {
    ExpectEvaluatorMatchesReference(
        t, SimplePredicate("cat", op, Value("zeta")));
  }
  // NaN rhs on numeric columns: Matches' three-way comparison collapses
  // to cmp==0, so kEq/kLe/kGe match every non-null row — the evaluator
  // must reproduce that, not IEEE all-false.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGt,
                       CompareOp::kLe, CompareOp::kGe}) {
    ExpectEvaluatorMatchesReference(t,
                                    SimplePredicate("score", op, Value(kNan)));
    ExpectEvaluatorMatchesReference(t,
                                    SimplePredicate("num", op, Value(kNan)));
  }
  // String rhs on numeric columns (non-numeric constant fallback).
  ExpectEvaluatorMatchesReference(
      t, SimplePredicate("num", CompareOp::kEq, Value("x")));
}

TEST(EvaluatePredicateRangeTest, PatternConjunctionAgreesAcrossTiers) {
  const Table t = MixedTable(777);
  const Pattern p({SimplePredicate("cat", CompareOp::kEq, Value("alpha")),
                   SimplePredicate("num", CompareOp::kLt, Value(int64_t{5})),
                   SimplePredicate("score", CompareOp::kGe, Value(-0.5))});
  Bitset first;
  bool have_first = false;
  for (KernelTier tier : SupportedTiers()) {
    ScopedTier scoped(tier);
    const Bitset got = p.Evaluate(t);
    for (size_t r = 0; r < t.NumRows(); ++r) {
      ASSERT_EQ(got.Test(r), p.Matches(t, r)) << "row " << r;
    }
    if (!have_first) {
      first = got;
      have_first = true;
    } else {
      EXPECT_TRUE(got == first);
    }
  }
}

// ---- bitset count kernels --------------------------------------------------

TEST(BitsetTest, CountAndNotRangeMatchesNaive) {
  Rng rng(8);
  const size_t n = 1000;
  Bitset a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBounded(3) == 0) a.Set(i);
    if (rng.NextBounded(3) == 0) b.Set(i);
  }
  const std::pair<size_t, size_t> ranges[] = {
      {0, n}, {0, 64}, {64, 128}, {5, 999}, {70, 70}, {500, 2000}};
  for (const auto& [begin, end] : ranges) {
    size_t expect = 0;
    for (size_t i = begin; i < std::min(end, n); ++i) {
      if (a.Test(i) && !b.Test(i)) ++expect;
    }
    EXPECT_EQ(a.CountAndNotRange(b, begin, end), expect)
        << "[" << begin << "," << end << ")";
  }
  EXPECT_EQ(a.CountAndNot(b), a.CountAndNotRange(b, 0, n));
}

TEST(BitsetTest, CountAndNotRangeZeroExtendsShorterOther) {
  // `a` grew (appends) while `covered` kept the original universe: tail
  // bits of `a` have no counterpart in `covered` and must all count.
  Bitset a(200), covered(100);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 100; i += 4) covered.Set(i);
  size_t expect_full = 0, expect_head = 0;
  for (size_t i = 0; i < 200; ++i) {
    const bool cov = i < 100 && covered.Test(i);
    if (a.Test(i) && !cov) {
      ++expect_full;
      if (i < 100) ++expect_head;
    }
  }
  EXPECT_EQ(a.CountAndNotRange(covered, 0, 200), expect_full);
  EXPECT_EQ(a.CountAndNotRange(covered, 0, 100), expect_head);
}

// ---- compressed bitsets ----------------------------------------------------

Bitset MakePattern(size_t n, const std::string& kind) {
  Bitset b(n);
  Rng rng(9);
  if (kind == "sparse") {
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBounded(400) == 0) b.Set(i);
    }
  } else if (kind == "dense") {
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBounded(2) == 0) b.Set(i);
    }
  } else if (kind == "runs") {
    size_t i = 0;
    while (i < n) {
      const size_t len = 1 + rng.NextBounded(5000);
      const bool set = rng.NextBounded(2) == 0;
      for (size_t j = i; j < std::min(n, i + len); ++j) {
        if (set) b.Set(j);
      }
      i += len;
    }
  } else if (kind == "full") {
    b.SetAll();
  }  // "empty": leave clear
  return b;
}

TEST(CompressedBitsetTest, RoundTripsEveryShape) {
  for (size_t n : {size_t{0}, size_t{100}, size_t{65536}, size_t{65537},
                   size_t{200000}}) {
    for (const char* kind : {"empty", "sparse", "dense", "runs", "full"}) {
      const Bitset original = MakePattern(n, kind);
      const CompressedBitset comp = CompressedBitset::FromBitset(original);
      EXPECT_EQ(comp.size(), n);
      EXPECT_EQ(comp.Count(), original.Count()) << kind << " n=" << n;
      EXPECT_TRUE(comp.ToBitset() == original) << kind << " n=" << n;
      // DecompressTo writes canonical words.
      std::vector<uint64_t> words(original.num_words(), ~uint64_t{0});
      comp.DecompressTo(words.data());
      EXPECT_TRUE(std::equal(words.begin(), words.end(), original.data()))
          << kind << " n=" << n;
      // Spot membership tests (plus past-the-universe).
      Rng rng(10);
      for (int s = 0; s < 50 && n > 0; ++s) {
        const size_t i = rng.NextBounded(n);
        EXPECT_EQ(comp.Test(i), original.Test(i));
      }
      EXPECT_FALSE(comp.Test(n + 5));
    }
  }
}

TEST(CompressedBitsetTest, EqualityIsStructuralAndDeterministic) {
  const Bitset a = MakePattern(100000, "sparse");
  EXPECT_TRUE(CompressedBitset::FromBitset(a) ==
              CompressedBitset::FromBitset(a));
  Bitset b = a;
  b.Set(12345);
  if (!a.Test(12345)) {
    EXPECT_FALSE(CompressedBitset::FromBitset(a) ==
                 CompressedBitset::FromBitset(b));
  }
}

TEST(CompressedBitsetTest, SparseAndRunShapesCompressWell) {
  const size_t n = 1 << 20;
  const size_t plain_bytes = sizeof(Bitset) + ((n + 63) / 64) * 8;
  const size_t sparse_bytes =
      CompressedBitset::FromBitset(MakePattern(n, "sparse")).SizeBytes();
  const size_t runs_bytes =
      CompressedBitset::FromBitset(MakePattern(n, "runs")).SizeBytes();
  EXPECT_LT(sparse_bytes * 4, plain_bytes);
  EXPECT_LT(runs_bytes * 4, plain_bytes);
  // Dense random chunks must fall back to verbatim bitmaps, never blow up.
  const size_t dense_bytes =
      CompressedBitset::FromBitset(MakePattern(n, "dense")).SizeBytes();
  EXPECT_LT(dense_bytes, plain_bytes + plain_bytes / 8 + 1024);
}

// ---- SegmentBits -----------------------------------------------------------

TEST(SegmentBitsTest, ChoosePolicies) {
  const Bitset sparse = MakePattern(1 << 18, "sparse");
  const Bitset dense = MakePattern(1 << 18, "dense");

  const SegmentBits never = SegmentBits::Choose(sparse, SegmentCompression::kNever);
  EXPECT_FALSE(never.compressed());
  ASSERT_NE(never.plain(), nullptr);
  EXPECT_TRUE(*never.plain() == sparse);

  const SegmentBits always = SegmentBits::Choose(sparse, SegmentCompression::kAlways);
  EXPECT_TRUE(always.compressed());
  EXPECT_EQ(always.plain(), nullptr);

  EXPECT_TRUE(
      SegmentBits::Choose(sparse, SegmentCompression::kAuto).compressed());
  EXPECT_FALSE(
      SegmentBits::Choose(dense, SegmentCompression::kAuto).compressed());

  // Accounting: a compressed sparse segment is at least 4x lighter.
  const size_t plain_bytes =
      SegmentBits::Choose(sparse, SegmentCompression::kNever).bytes();
  const size_t comp_bytes =
      SegmentBits::Choose(sparse, SegmentCompression::kAuto).bytes();
  EXPECT_LT(comp_bytes * 4, plain_bytes);
}

TEST(SegmentBitsTest, RangeOpsMatchPlainOnEveryRepresentation) {
  const size_t seg_rows = 1000;
  const size_t offset = 320;  // word-aligned
  for (const char* kind : {"empty", "sparse", "dense", "runs", "full"}) {
    const Bitset seg_bits = MakePattern(seg_rows, kind);
    for (SegmentCompression mode :
         {SegmentCompression::kNever, SegmentCompression::kAlways,
          SegmentCompression::kAuto}) {
      const SegmentBits seg = SegmentBits::Choose(seg_bits, mode);
      EXPECT_EQ(seg.size(), seg_rows);
      EXPECT_EQ(seg.Count(), seg_bits.Count());
      EXPECT_TRUE(seg.Materialize() == seg_bits);

      Bitset dst = MakePattern(offset + seg_rows + 64, "dense");
      Bitset expect_and = dst, expect_assign = dst;
      expect_and.AndRange(offset, seg_bits);
      expect_assign.AssignRange(offset, seg_bits);

      Bitset got_and = dst;
      std::vector<uint64_t> scratch;
      seg.AndIntoRange(&got_and, offset, &scratch);
      EXPECT_TRUE(got_and == expect_and) << kind;

      Bitset got_assign = dst;
      seg.AssignIntoRange(&got_assign, offset);
      EXPECT_TRUE(got_assign == expect_assign) << kind;
    }
  }
}

}  // namespace
}  // namespace causumx
