// Unit tests for the natural-language explanation renderer.

#include <gtest/gtest.h>

#include "core/renderer.h"

namespace causumx {
namespace {

RenderStyle MakeStyle() {
  RenderStyle style;
  style.subject_noun = "individuals";
  style.outcome_noun = "annual income";
  style.group_noun = "countries";
  style.predicate_phrases = {
      {"Age < 35", "being under 35"},
      {"Student = Yes", "being a student"},
  };
  return style;
}

TEST(RendererTest, PValueFormatting) {
  EXPECT_EQ(RenderPValue(0.0005), "p < 1e-3");
  EXPECT_EQ(RenderPValue(0.00009), "p < 1e-4");
  EXPECT_EQ(RenderPValue(0.04), "p = 0.04");
  EXPECT_EQ(RenderPValue(0.0), "p < 1e-16");
}

TEST(RendererTest, PredicatePhraseOverride) {
  const RenderStyle style = MakeStyle();
  SimplePredicate p("Age", CompareOp::kLt, Value(int64_t{35}));
  EXPECT_EQ(RenderPredicate(p, style), "being under 35");
}

TEST(RendererTest, PredicateGenericFallbacks) {
  const RenderStyle style = MakeStyle();
  EXPECT_EQ(RenderPredicate(
                SimplePredicate("Age", CompareOp::kGt, Value(int64_t{55})),
                style),
            "Age above 55");
  EXPECT_EQ(RenderPredicate(
                SimplePredicate("Role", CompareOp::kEq, Value("QA")), style),
            "Role = QA");
  EXPECT_EQ(RenderPredicate(
                SimplePredicate("Pay", CompareOp::kGe, Value(100.0)), style),
            "Pay at least 100");
  EXPECT_EQ(RenderPredicate(
                SimplePredicate("Pay", CompareOp::kLe, Value(100.0)), style),
            "Pay at most 100");
}

TEST(RendererTest, PatternConjunctionWording) {
  const RenderStyle style = MakeStyle();
  Pattern p({SimplePredicate("Age", CompareOp::kLt, Value(int64_t{35})),
             SimplePredicate("Student", CompareOp::kEq, Value("Yes"))});
  EXPECT_EQ(RenderPattern(p, style), "being under 35 and being a student");
  EXPECT_EQ(RenderPattern(Pattern(), style), "all individuals");
}

TEST(RendererTest, ExplanationSentenceContainsAllParts) {
  const RenderStyle style = MakeStyle();
  Explanation exp;
  exp.grouping_pattern =
      Pattern({SimplePredicate("Continent", CompareOp::kEq, Value("Europe"))});
  exp.group_coverage = Bitset(10);
  exp.group_coverage.Set(0);
  exp.group_coverage.Set(1);
  TreatmentSide pos;
  pos.pattern =
      Pattern({SimplePredicate("Age", CompareOp::kLt, Value(int64_t{35}))});
  pos.effect.valid = true;
  pos.effect.cate = 36000;
  pos.effect.p_value = 0.0004;
  exp.positive = pos;
  TreatmentSide neg;
  neg.pattern =
      Pattern({SimplePredicate("Student", CompareOp::kEq, Value("Yes"))});
  neg.effect.valid = true;
  neg.effect.cate = -39000;
  neg.effect.p_value = 0.0002;
  exp.negative = neg;

  const std::string text = RenderExplanation(exp, style);
  EXPECT_NE(text.find("Continent = Europe"), std::string::npos);
  EXPECT_NE(text.find("being under 35"), std::string::npos);
  EXPECT_NE(text.find("being a student"), std::string::npos);
  EXPECT_NE(text.find("36K"), std::string::npos);
  EXPECT_NE(text.find("-39K"), std::string::npos);
  EXPECT_NE(text.find("p < 1e-3"), std::string::npos);
  EXPECT_NE(text.find("2 countries"), std::string::npos);
}

TEST(RendererTest, SummaryListsAllExplanations) {
  const RenderStyle style = MakeStyle();
  ExplanationSummary summary;
  summary.num_groups = 5;
  summary.covered_groups = 4;
  summary.total_explainability = 100.0;
  for (int i = 0; i < 2; ++i) {
    Explanation exp;
    exp.grouping_pattern = Pattern(
        {SimplePredicate("G", CompareOp::kEq, Value(std::to_string(i)))});
    exp.group_coverage = Bitset(5);
    exp.group_coverage.Set(i);
    TreatmentSide pos;
    pos.pattern =
        Pattern({SimplePredicate("T", CompareOp::kEq, Value("x"))});
    pos.effect.valid = true;
    pos.effect.cate = 1.0;
    pos.effect.p_value = 0.01;
    exp.positive = pos;
    summary.explanations.push_back(std::move(exp));
  }
  const std::string text = RenderSummary(summary, style);
  EXPECT_NE(text.find("G = 0"), std::string::npos);
  EXPECT_NE(text.find("G = 1"), std::string::npos);
  EXPECT_NE(text.find("covers 4/5 countries"), std::string::npos);
}

TEST(RendererTest, EmptySummaryMessage) {
  const std::string text = RenderSummary({}, MakeStyle());
  EXPECT_NE(text.find("No statistically significant"), std::string::npos);
}

}  // namespace
}  // namespace causumx
