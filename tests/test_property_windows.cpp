// Differential property harness for the windowed-retention stream
// layer (src/stream/): on seeded random tables, a StreamMonitor fed
// random append schedules must produce, at every window boundary, a
// summary bit-identical to a from-scratch CauSumX run over exactly the
// surviving rows — for tumbling and sliding windows, shard counts 1-16,
// and compressed/uncompressed segment policies. The engine-level
// retraction path (Table::Tail + the retract constructors) is also
// checked directly against cold rebuilds.
//
// The suite runs 25 seeds x 4 schedules each (2 window kinds x 2
// compression policies) = 100 randomized schedules, each validating
// every evaluated window; CI executes it under ASan+UBSan and TSan.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "causal/estimator_context.h"
#include "core/causumx.h"
#include "core/json_export.h"
#include "dataset/group_query.h"
#include "engine/eval_engine.h"
#include "stream/monitor.h"
#include "util/json.h"
#include "util/rng.h"

namespace causumx {
namespace {

struct RandomWorld {
  std::shared_ptr<Table> table;
  std::vector<SimplePredicate> atoms;
};

// Mixed-type table with ~5% nulls; sized for several windows of 48-80
// rows so every schedule crosses multiple boundaries.
RandomWorld MakeWorld(uint64_t seed, size_t rows) {
  RandomWorld w;
  Rng rng(seed);
  w.table = std::make_shared<Table>();
  w.table->AddColumn("g1", ColumnType::kCategorical);
  w.table->AddColumn("g2", ColumnType::kCategorical);
  w.table->AddColumn("t1", ColumnType::kCategorical);
  w.table->AddColumn("i1", ColumnType::kInt64);
  w.table->AddColumn("y", ColumnType::kDouble);
  const char* g1_vals[] = {"a", "b", "c"};
  const char* g2_vals[] = {"x", "y"};
  const char* t1_vals[] = {"lo", "hi"};
  for (size_t r = 0; r < rows; ++r) {
    w.table->AddRow({
        rng.NextBool(0.05) ? Value() : Value(g1_vals[rng.NextBounded(3)]),
        rng.NextBool(0.05) ? Value() : Value(g2_vals[rng.NextBounded(2)]),
        rng.NextBool(0.05) ? Value() : Value(t1_vals[rng.NextBounded(2)]),
        rng.NextBool(0.05) ? Value() : Value(rng.NextInt(0, 9)),
        rng.NextBool(0.05) ? Value()
                           : Value(rng.NextGaussian() * 3.0 +
                                   rng.NextDouble()),
    });
  }
  w.atoms = {
      SimplePredicate("g1", CompareOp::kEq, Value("a")),
      SimplePredicate("g2", CompareOp::kEq, Value("x")),
      SimplePredicate("t1", CompareOp::kEq, Value("hi")),
      SimplePredicate("i1", CompareOp::kLt, Value(int64_t{5})),
      SimplePredicate("i1", CompareOp::kGe, Value(int64_t{2})),
      SimplePredicate("y", CompareOp::kGt, Value(0.0)),
  };
  return w;
}

// The monitor spec shared by every schedule; knobs loose enough that
// small windows still yield explanations (so the diffs are nontrivial).
std::string MakeSpec(WindowSpec::Kind kind, size_t window_rows,
                     size_t slide_rows, size_t shards, bool compress) {
  JsonWriter w;
  w.BeginObject()
      .Key("table").String("t")
      .Key("group_by").BeginArray().String("g1").EndArray()
      .Key("avg").String("y")
      .Key("dag_text").String("t1 -> y\ni1 -> y\n")
      .Key("grouping_attrs").BeginArray().String("g2").EndArray()
      .Key("k").Uint(3)
      .Key("theta").Double(0.4)
      .Key("support").Double(0.05)
      .Key("alpha").Double(0.9)
      .Key("min_group_size").Uint(3)
      .Key("num_threads").Uint(1)
      .Key("num_shards").Uint(shards)
      .Key("compression").String(compress ? "always" : "never")
      .Key("emit_summaries").Bool(true);
  w.Key("window").BeginObject()
      .Key("kind")
      .String(kind == WindowSpec::Kind::kTumbling ? "tumbling" : "sliding")
      .Key("size_rows").Uint(window_rows)
      .Key("slide_rows").Uint(slide_rows)
      .EndObject();
  w.EndObject();
  return w.str();
}

// The reference configuration matching MakeSpec, at the serial
// single-shard baseline (bit-identical to any shard count by the
// sharded differential property).
CauSumXConfig ReferenceConfig() {
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.4;
  config.apriori_support = 0.05;
  config.treatment.alpha = 0.9;
  config.estimator.min_group_size = 3;
  config.grouping_attribute_allowlist = {"g2"};
  config.num_threads = 1;
  config.num_shards = 1;
  return config;
}

// Extracts the raw SummaryToJson payload a "summary" event spliced in
// (the event's last member, so it runs to the closing brace).
std::string SummaryPayload(const std::string& event_json) {
  static const std::string kMarker = "\"summary\":";
  const size_t at = event_json.find(kMarker);
  EXPECT_NE(at, std::string::npos) << event_json;
  if (at == std::string::npos) return "";
  return event_json.substr(at + kMarker.size(),
                           event_json.size() - at - kMarker.size() - 1);
}

// From-scratch rebuild of the surviving rows [begin, end): a fresh
// table (fresh dictionaries in first-appearance order) through a cold
// serial CauSumX run.
std::string FromScratchSummary(const RandomWorld& w, size_t begin,
                               size_t end) {
  Table rebuilt;
  for (size_t c = 0; c < w.table->NumColumns(); ++c) {
    rebuilt.AddColumn(w.table->column(c).name(), w.table->column(c).type());
  }
  rebuilt.AppendRows(w.table->MaterializeRows(begin, end));
  GroupByAvgQuery q;
  q.group_by = {"g1"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddEdge("t1", "y");
  dag.AddEdge("i1", "y");
  const CauSumXResult r = RunCauSumX(rebuilt, q, dag, ReferenceConfig());
  return SummaryToJson(r.summary, &q);
}

// One full schedule: stream the world's rows into a monitor in random
// batches and check every evaluated window against the from-scratch
// rebuild of exactly its surviving rows.
void RunSchedule(uint64_t seed, WindowSpec::Kind kind, bool compress) {
  Rng rng(seed);
  const size_t window_rows = 48 + rng.NextBounded(33);  // 48..80
  const size_t slide_rows = kind == WindowSpec::Kind::kTumbling
                                ? window_rows
                                : 1 + rng.NextBounded(window_rows);
  const size_t shards = 1 + rng.NextBounded(16);
  const size_t boundaries = 3 + rng.NextBounded(2);
  const size_t total = window_rows + slide_rows * (boundaries - 1) +
                       rng.NextBounded(slide_rows);
  const RandomWorld w = MakeWorld(seed * 101 + 11, total);

  StreamMonitor monitor(
      "m-test",
      MakeSpec(kind, window_rows, slide_rows, shards, compress), *w.table,
      /*mining_pool=*/nullptr);

  // Random append schedule: batch sizes from 1 to ~1.5 windows, so some
  // appends cross several boundaries in one call and some windows are
  // assembled one row at a time.
  size_t at = 0;
  while (at < total) {
    const size_t batch =
        1 + rng.NextBounded(window_rows + window_rows / 2);
    const size_t end = std::min(total, at + batch);
    monitor.OnAppend(w.table->MaterializeRows(at, end));
    at = end;
  }

  const MonitorStatus status = monitor.Status();
  const size_t expected_windows = (total - window_rows) / slide_rows + 1;
  ASSERT_EQ(status.windows_evaluated, expected_windows)
      << "kind=" << static_cast<int>(kind) << " W=" << window_rows
      << " S=" << slide_rows << " total=" << total;
  ASSERT_EQ(status.rows_observed, total);
  // The resident window never exceeds one window plus the pre-boundary
  // slack of one slide.
  ASSERT_LE(status.window_rows, window_rows + slide_rows);

  size_t checked = 0;
  for (const MonitorEvent& e : monitor.EventsSince(0)) {
    const JsonValue parsed = JsonValue::Parse(e.json);
    if (parsed.GetString("type") != "summary") continue;
    const size_t begin =
        static_cast<size_t>(parsed.GetNumber("window_begin", -1));
    const size_t end =
        static_cast<size_t>(parsed.GetNumber("window_end", -1));
    ASSERT_EQ(end - begin, window_rows);
    EXPECT_EQ(SummaryPayload(e.json), FromScratchSummary(w, begin, end))
        << "window [" << begin << ", " << end << ") shards=" << shards
        << " compress=" << compress;
    ++checked;
  }
  ASSERT_EQ(checked, expected_windows);
}

class WindowedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowedPropertyTest, TumblingUncompressedMatchesFromScratch) {
  RunSchedule(GetParam() * 7 + 1, WindowSpec::Kind::kTumbling, false);
}

TEST_P(WindowedPropertyTest, TumblingCompressedMatchesFromScratch) {
  RunSchedule(GetParam() * 11 + 2, WindowSpec::Kind::kTumbling, true);
}

TEST_P(WindowedPropertyTest, SlidingUncompressedMatchesFromScratch) {
  RunSchedule(GetParam() * 13 + 3, WindowSpec::Kind::kSliding, false);
}

TEST_P(WindowedPropertyTest, SlidingCompressedMatchesFromScratch) {
  RunSchedule(GetParam() * 17 + 4, WindowSpec::Kind::kSliding, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{26}));

// ---- engine-level retraction properties ------------------------------------

class RetractPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// A warm engine retracted by a random prefix must answer every pattern
// exactly like a cache-bypass engine over the tail table, and its byte
// accounting must shrink (expiry may never leak resident bytes).
TEST_P(RetractPropertyTest, RetractedEngineMatchesColdTail) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  const size_t rows = 150 + rng.NextBounded(300);
  const RandomWorld w = MakeWorld(seed * 131 + 17, rows);
  const size_t shards = 1 + rng.NextBounded(16);

  EvalEngineOptions options;
  options.cache_enabled = true;
  options.num_shards = shards;
  options.compression = rng.NextBool(0.5) ? SegmentCompression::kAlways
                                          : SegmentCompression::kNever;
  auto engine = std::make_shared<EvalEngine>(
      std::shared_ptr<const Table>(w.table), options);
  for (const auto& atom : w.atoms) engine->Evaluate(Pattern({atom}));
  engine->Numeric(*w.table->ColumnIndex("y"));
  const size_t warm_bytes = engine->CacheBytes();

  const size_t drop = 1 + rng.NextBounded(rows / 2);
  auto tail = std::make_shared<const Table>(w.table->Tail(drop));
  auto retracted = std::make_shared<EvalEngine>(tail, *engine, drop);

  EXPECT_LE(retracted->CacheBytes(), warm_bytes)
      << "retraction grew resident bytes (drop=" << drop << ")";

  EvalEngine bypass(*tail, /*cache_enabled=*/false);
  for (const auto& atom : w.atoms) {
    const Pattern p({atom});
    ASSERT_TRUE(retracted->Evaluate(p) == bypass.Evaluate(p))
        << "drop=" << drop << " shards=" << shards << " " << p.ToString();
  }
  for (size_t i = 0; i < w.atoms.size(); ++i) {
    for (size_t j = i + 1; j < w.atoms.size(); ++j) {
      const Pattern p({w.atoms[i], w.atoms[j]});
      ASSERT_TRUE(retracted->Evaluate(p) == bypass.Evaluate(p))
          << "drop=" << drop << " " << p.ToString();
    }
  }
}

// CATE estimates through a retracted context must be bit-identical to a
// fresh context over the tail table (carried memo entries included).
TEST_P(RetractPropertyTest, RetractedContextMatchesFreshEstimates) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 37 + 7);
  const size_t rows = 150 + rng.NextBounded(300);
  const RandomWorld w = MakeWorld(seed * 137 + 19, rows);

  CausalDag dag;
  dag.AddEdge("t1", "y");
  dag.AddEdge("i1", "y");
  EstimatorOptions est;
  est.min_group_size = 3;

  EvalEngineOptions options;
  options.cache_enabled = true;
  options.num_shards = 1 + rng.NextBounded(16);
  auto engine = std::make_shared<EvalEngine>(
      std::shared_ptr<const Table>(w.table), options);
  auto ctx = std::make_shared<EstimatorContext>(engine, dag, est);

  // Warm the memo over the full table.
  const Pattern treatment({w.atoms[2]});
  Bitset all(w.table->NumRows());
  all.SetAll();
  ctx->EstimateCate(treatment, "y", all);
  ctx->EstimateCate(treatment, "y", Pattern({w.atoms[0]}).Evaluate(*w.table));

  const size_t drop = 1 + rng.NextBounded(rows / 2);
  auto tail = std::make_shared<const Table>(w.table->Tail(drop));
  auto retracted_engine = std::make_shared<EvalEngine>(tail, *engine, drop);
  EstimatorContext retracted(retracted_engine, *ctx, drop);

  auto fresh_engine = std::make_shared<EvalEngine>(tail, options);
  EstimatorContext fresh(fresh_engine, dag, est);

  Bitset tail_all(tail->NumRows());
  tail_all.SetAll();
  const std::vector<Bitset> subpops = {
      tail_all,
      Pattern({w.atoms[0]}).Evaluate(*tail),
      Pattern({w.atoms[1]}).Evaluate(*tail),
  };
  for (const Bitset& subpop : subpops) {
    const EffectEstimate a = retracted.EstimateCate(treatment, "y", subpop);
    const EffectEstimate b = fresh.EstimateCate(treatment, "y", subpop);
    EXPECT_EQ(a.valid, b.valid) << "drop=" << drop;
    EXPECT_EQ(a.cate, b.cate) << "drop=" << drop;
    EXPECT_EQ(a.std_error, b.std_error) << "drop=" << drop;
    EXPECT_EQ(a.p_value, b.p_value) << "drop=" << drop;
    EXPECT_EQ(a.n_used, b.n_used) << "drop=" << drop;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetractPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace causumx
