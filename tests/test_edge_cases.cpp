// Failure-injection and degenerate-input tests across the pipeline: the
// library must degrade gracefully (no crashes, meaningful empties) on
// pathological data.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/frl.h"
#include "baselines/ids.h"
#include "core/causumx.h"
#include "core/exploration.h"
#include "dataset/csv.h"
#include "mining/treatment_miner.h"
#include "util/rng.h"

namespace causumx {
namespace {

TEST(EdgeCaseTest, ConstantOutcomeYieldsNoExplanations) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    t.AddRow({Value(i % 2 ? "a" : "b"), Value(rng.NextBool(0.5) ? "1" : "0"),
              Value(7.0)});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  const CauSumXResult r = RunCauSumX(t, q, dag, {});
  EXPECT_TRUE(r.summary.explanations.empty());
  EXPECT_EQ(r.summary.num_groups, 2u);
}

TEST(EdgeCaseTest, AllNullOutcome) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  for (int i = 0; i < 50; ++i) {
    t.AddRow({Value("a"), Value()});
  }
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddNode("y");
  const CauSumXResult r = RunCauSumX(t, q, dag, {});
  EXPECT_EQ(r.summary.num_groups, 0u);
}

TEST(EdgeCaseTest, SingleGroupView) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(2);
  for (int i = 0; i < 600; ++i) {
    const bool x = rng.NextBool(0.5);
    t.AddRow({Value("only"), Value(x ? "1" : "0"),
              Value((x ? 2.0 : 0.0) + rng.NextGaussian(0, 0.3))});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CauSumXConfig config;
  config.k = 1;
  config.theta = 1.0;
  const CauSumXResult r = RunCauSumX(t, q, dag, config);
  ASSERT_EQ(r.summary.num_groups, 1u);
  ASSERT_EQ(r.summary.explanations.size(), 1u);
  EXPECT_TRUE(r.summary.coverage_satisfied);
  EXPECT_NEAR(r.summary.explanations[0].positive->effect.cate, 2.0, 0.3);
}

TEST(EdgeCaseTest, GroupByAttributeMissingThrows) {
  Table t;
  t.AddColumn("y", ColumnType::kDouble);
  t.AddRow({Value(1.0)});
  GroupByAvgQuery q;
  q.group_by = {"nope"};
  q.avg_attribute = "y";
  CausalDag dag;
  EXPECT_THROW(AggregateView::Evaluate(t, q), std::out_of_range);
}

TEST(EdgeCaseTest, TreatmentMinerEmptyAttributeList) {
  Table t;
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) t.AddRow({Value(rng.NextGaussian())});
  CausalDag dag;
  dag.AddNode("y");
  EffectEstimator est(t, dag);
  Bitset all(t.NumRows());
  all.SetAll();
  EXPECT_FALSE(
      MineTopTreatment(est, all, "y", {}, TreatmentSign::kPositive)
          .has_value());
}

TEST(EdgeCaseTest, TreatmentMinerEmptySubpopulation) {
  Table t;
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    t.AddRow({Value(rng.NextBool(0.5) ? "1" : "0"),
              Value(rng.NextGaussian())});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  EffectEstimator est(t, dag);
  const Bitset empty(t.NumRows());
  EXPECT_FALSE(
      MineTopTreatment(est, empty, "y", {"x"}, TreatmentSign::kPositive)
          .has_value());
}

TEST(EdgeCaseTest, ThetaZeroAlwaysFeasible) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const bool x = rng.NextBool(0.5);
    t.AddRow({Value(i % 4 == 0 ? "a" : "b"), Value(x ? "1" : "0"),
              Value((x ? 1.0 : 0.0) + rng.NextGaussian(0, 0.2))});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CauSumXConfig config;
  config.theta = 0.0;
  const CauSumXResult r = RunCauSumX(t, q, dag, config);
  EXPECT_TRUE(r.summary.coverage_satisfied);
}

TEST(EdgeCaseTest, KLargerThanCandidates) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    const bool x = rng.NextBool(0.5);
    t.AddRow({Value(i % 2 ? "a" : "b"), Value(x ? "1" : "0"),
              Value((x ? 1.5 : 0.0) + rng.NextGaussian(0, 0.2))});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CauSumXConfig config;
  config.k = 50;  // far more than available candidates
  config.theta = 0.5;
  const CauSumXResult r = RunCauSumX(t, q, dag, config);
  EXPECT_LE(r.summary.explanations.size(), 50u);
  EXPECT_TRUE(r.summary.coverage_satisfied);
}

TEST(EdgeCaseTest, RuleBaselinesOnConstantOutcome) {
  Table t;
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  for (int i = 0; i < 200; ++i) {
    t.AddRow({Value(i % 2 ? "a" : "b"), Value(1.0)});
  }
  // Outcome constant: binning puts everything in class 1; baselines must
  // not crash and must report (near-)perfect accuracy trivially.
  const IdsResult ids = RunIds(t, "y", {});
  EXPECT_GE(ids.accuracy, 0.99);
  const FrlResult frl = RunFrl(t, "y", {});
  EXPECT_GE(frl.accuracy, 0.99);
}

TEST(EdgeCaseTest, CsvWithOnlyHeader) {
  std::istringstream in("a,b,c\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumColumns(), 3u);
}

TEST(EdgeCaseTest, ExplorationOnEmptyView) {
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CausalDag dag;
  dag.AddNode("y");
  ExplorationSession session(t, q, dag, {});
  const ExplanationSummary s = session.Solve(3, 0.5);
  EXPECT_TRUE(s.explanations.empty());
  EXPECT_EQ(session.View().NumGroups(), 0u);
}

TEST(EdgeCaseTest, NegativeOutcomesHandled) {
  // Entirely negative outcome values: sign conventions must still hold.
  Table t;
  t.AddColumn("g", ColumnType::kCategorical);
  t.AddColumn("x", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  Rng rng(8);
  for (int i = 0; i < 800; ++i) {
    const bool x = rng.NextBool(0.5);
    t.AddRow({Value(i % 2 ? "a" : "b"), Value(x ? "1" : "0"),
              Value(-100.0 + (x ? 5.0 : 0.0) + rng.NextGaussian())});
  }
  CausalDag dag;
  dag.AddEdge("x", "y");
  GroupByAvgQuery q;
  q.group_by = {"g"};
  q.avg_attribute = "y";
  CauSumXConfig config;
  config.k = 2;
  config.theta = 1.0;
  const CauSumXResult r = RunCauSumX(t, q, dag, config);
  ASSERT_FALSE(r.summary.explanations.empty());
  const auto& exp = r.summary.explanations[0];
  ASSERT_TRUE(exp.positive.has_value());
  EXPECT_NEAR(exp.positive->effect.cate, 5.0, 0.5);
}

}  // namespace
}  // namespace causumx
