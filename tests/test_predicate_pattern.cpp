// Unit tests for predicates and conjunctive patterns (Definition 4.1).

#include <gtest/gtest.h>

#include "dataset/pattern.h"
#include "dataset/predicate.h"

namespace causumx {
namespace {

Table MakeTable() {
  Table t;
  t.AddColumn("role", ColumnType::kCategorical);
  t.AddColumn("age", ColumnType::kInt64);
  t.AddColumn("pay", ColumnType::kDouble);
  t.AddRow({Value("dev"), Value(int64_t{30}), Value(100.0)});
  t.AddRow({Value("qa"), Value(int64_t{45}), Value(80.0)});
  t.AddRow({Value("dev"), Value(int64_t{52}), Value(120.0)});
  t.AddRow({Value("mgr"), Value(), Value(150.0)});
  return t;
}

TEST(PredicateTest, EqualityOnCategorical) {
  const Table t = MakeTable();
  SimplePredicate p("role", CompareOp::kEq, Value("dev"));
  EXPECT_TRUE(p.Matches(t, 0));
  EXPECT_FALSE(p.Matches(t, 1));
  EXPECT_TRUE(p.Matches(t, 2));
}

TEST(PredicateTest, OrderedOpsOnNumeric) {
  const Table t = MakeTable();
  EXPECT_TRUE(SimplePredicate("age", CompareOp::kLt, Value(int64_t{40}))
                  .Matches(t, 0));
  EXPECT_FALSE(SimplePredicate("age", CompareOp::kLt, Value(int64_t{40}))
                   .Matches(t, 1));
  EXPECT_TRUE(SimplePredicate("age", CompareOp::kGe, Value(int64_t{45}))
                  .Matches(t, 1));
  EXPECT_TRUE(SimplePredicate("pay", CompareOp::kLe, Value(100.0))
                  .Matches(t, 0));
  EXPECT_TRUE(SimplePredicate("pay", CompareOp::kGt, Value(100.0))
                  .Matches(t, 2));
}

TEST(PredicateTest, NullNeverMatches) {
  const Table t = MakeTable();
  SimplePredicate p("age", CompareOp::kGe, Value(int64_t{0}));
  EXPECT_FALSE(p.Matches(t, 3));
}

TEST(PredicateTest, ToStringRendersOperator) {
  SimplePredicate p("age", CompareOp::kLe, Value(int64_t{35}));
  EXPECT_EQ(p.ToString(), "age <= 35");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGe), ">=");
}

TEST(PatternTest, EmptyPatternMatchesAll) {
  const Table t = MakeTable();
  Pattern p;
  EXPECT_TRUE(p.IsEmpty());
  EXPECT_EQ(p.ToString(), "TRUE");
  EXPECT_EQ(p.Evaluate(t).Count(), t.NumRows());
}

TEST(PatternTest, ConjunctionSemantics) {
  const Table t = MakeTable();
  Pattern p({SimplePredicate("role", CompareOp::kEq, Value("dev")),
             SimplePredicate("age", CompareOp::kGt, Value(int64_t{40}))});
  const Bitset rows = p.Evaluate(t);
  EXPECT_EQ(rows.Count(), 1u);
  EXPECT_TRUE(rows.Test(2));
}

TEST(PatternTest, CanonicalizationMakesOrderIrrelevant) {
  SimplePredicate a("role", CompareOp::kEq, Value("dev"));
  SimplePredicate b("age", CompareOp::kLt, Value(int64_t{40}));
  Pattern p1({a, b});
  Pattern p2({b, a});
  EXPECT_TRUE(p1 == p2);
  EXPECT_EQ(p1.Hash(), p2.Hash());
  EXPECT_EQ(p1.ToString(), p2.ToString());
}

TEST(PatternTest, DuplicatePredicatesCollapse) {
  SimplePredicate a("role", CompareOp::kEq, Value("dev"));
  Pattern p({a, a});
  EXPECT_EQ(p.Size(), 1u);
}

TEST(PatternTest, WithAddsPredicate) {
  Pattern base({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  Pattern extended =
      base.With(SimplePredicate("age", CompareOp::kLt, Value(int64_t{40})));
  EXPECT_EQ(extended.Size(), 2u);
  EXPECT_EQ(base.Size(), 1u);  // immutable
  EXPECT_TRUE(extended.UsesAttribute("age"));
  EXPECT_FALSE(base.UsesAttribute("age"));
}

TEST(PatternTest, RangePatternOnOneAttribute) {
  const Table t = MakeTable();
  Pattern range({SimplePredicate("age", CompareOp::kGt, Value(int64_t{40})),
                 SimplePredicate("age", CompareOp::kLt, Value(int64_t{50}))});
  const Bitset rows = range.Evaluate(t);
  EXPECT_EQ(rows.Count(), 1u);
  EXPECT_TRUE(rows.Test(1));  // age 45
}

TEST(PatternTest, AttributesDeduplicated) {
  Pattern p({SimplePredicate("age", CompareOp::kGt, Value(int64_t{1})),
             SimplePredicate("age", CompareOp::kLt, Value(int64_t{9})),
             SimplePredicate("role", CompareOp::kEq, Value("qa"))});
  const auto attrs = p.Attributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "age");
  EXPECT_EQ(attrs[1], "role");
}

TEST(PatternTest, EvaluateOnRestrictsToMask) {
  const Table t = MakeTable();
  Bitset mask(t.NumRows());
  mask.Set(0);
  mask.Set(1);
  Pattern p({SimplePredicate("role", CompareOp::kEq, Value("dev"))});
  const Bitset rows = p.EvaluateOn(t, mask);
  EXPECT_EQ(rows.Count(), 1u);
  EXPECT_TRUE(rows.Test(0));
}

TEST(PatternTest, HashDiffersForDifferentPatterns) {
  Pattern p1({SimplePredicate("a", CompareOp::kEq, Value("x"))});
  Pattern p2({SimplePredicate("a", CompareOp::kEq, Value("y"))});
  Pattern p3({SimplePredicate("a", CompareOp::kLt, Value("x"))});
  EXPECT_NE(p1.Hash(), p2.Hash());
  EXPECT_NE(p1.Hash(), p3.Hash());
}

}  // namespace
}  // namespace causumx
