// Golden tests for the windowed continuous-monitoring subsystem
// (src/stream/): drift alerts on a stream with a planted effect shift
// (the alert fires at exactly the shifted window, with the planted
// delta in the payload, and never on a stationary stream), top-k churn
// alerts on a group-structure change, bounded resident bytes across
// window cycling (expiry must decrement the LRU byte accounting), the
// registry's observer wiring through ExplanationService appends, and
// the snapshot round trip (a restored monitor continues bit-identically
// to one that never stopped).

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "causal/dag_io.h"
#include "datagen/synthetic.h"
#include "dataset/table.h"
#include "service/explanation_service.h"
#include "storage/file_io.h"
#include "stream/monitor.h"
#include "util/json.h"

namespace causumx {
namespace {

// A scratch directory removed (with its files) on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/causumx_monitor_XXXXXX";
    path = ::mkdtemp(buf);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& f : ListDirFiles(path)) {
      ::unlink((path + "/" + f).c_str());
    }
    ::rmdir(path.c_str());
  }
};

// The LinearSCM monitor spec: one window per generated dataset, CATE
// drift threshold well below the planted effect shift but well above
// sampling noise at this row count.
std::string ScmSpec(size_t window_rows, const CausalDag& dag,
                    double cate_delta) {
  JsonWriter w;
  w.BeginObject()
      .Key("table").String("t")
      .Key("group_by").BeginArray().String("G").EndArray()
      .Key("avg").String("O")
      .Key("dag_text").String(DagToText(dag))
      .Key("grouping_attrs").BeginArray().String("G").EndArray()
      .Key("treatment_attrs").BeginArray().String("T").EndArray()
      .Key("k").Uint(4)
      .Key("theta").Double(0.3)
      .Key("support").Double(0.05)
      .Key("alpha").Double(0.9)
      .Key("min_group_size").Uint(5)
      .Key("num_threads").Uint(1);
  w.Key("window").BeginObject()
      .Key("kind").String("tumbling")
      .Key("size_rows").Uint(window_rows)
      .EndObject();
  w.Key("thresholds").BeginObject()
      .Key("cate_delta").Double(cate_delta)
      .EndObject();
  w.EndObject();
  return w.str();
}

std::vector<MonitorEvent> DriftEvents(const StreamMonitor& monitor) {
  std::vector<MonitorEvent> out;
  for (const MonitorEvent& e : monitor.EventsSince(0)) {
    if (JsonValue::Parse(e.json).GetString("type") == "cate_drift") {
      out.push_back(e);
    }
  }
  return out;
}

// Planted effect shift: windows 0 and 2 carry the baseline ATE, window
// 1 the shifted ATE, over IDENTICAL confounder/treatment draws (same
// seed), so the only change between windows is the planted effect. The
// alert must fire at window 1 (the shift in) and window 2 (the shift
// back out), each with the planted delta, and nowhere else.
TEST(MonitorDriftTest, FiresExactlyAtTheShiftedWindow) {
  LinearScmOptions base;
  base.num_rows = 1200;
  base.ate = 2.0;
  base.seed = 29;
  LinearScmOptions shifted = base;
  shifted.ate = 8.0;

  const GeneratedDataset before = MakeLinearScmDataset(base);
  const GeneratedDataset during = MakeLinearScmDataset(shifted);
  const size_t n = before.table.NumRows();
  ASSERT_EQ(during.table.NumRows(), n);

  StreamMonitor monitor("m-drift", ScmSpec(n, before.dag, 3.0),
                        before.table, nullptr);
  monitor.OnAppend(before.table.MaterializeRows(0, n));   // window 0
  ASSERT_TRUE(DriftEvents(monitor).empty()) << "baseline window alerted";
  monitor.OnAppend(during.table.MaterializeRows(0, n));   // window 1
  const std::vector<MonitorEvent> at_shift = DriftEvents(monitor);
  ASSERT_FALSE(at_shift.empty()) << "planted shift not detected";
  monitor.OnAppend(before.table.MaterializeRows(0, n));   // window 2

  const MonitorStatus status = monitor.Status();
  EXPECT_EQ(status.windows_evaluated, 3u);

  bool positive_seen = false;
  for (const MonitorEvent& e : DriftEvents(monitor)) {
    const JsonValue v = JsonValue::Parse(e.json);
    const double idx = v.GetNumber("window_index", -1);
    EXPECT_TRUE(idx == 1 || idx == 2) << e.json;
    EXPECT_EQ(v.GetNumber("window_begin", -1), idx * n) << e.json;
    EXPECT_EQ(v.GetNumber("window_end", -1), (idx + 1) * n) << e.json;
    const double d_before = v.GetNumber("cate_before", 0);
    const double d_after = v.GetNumber("cate_after", 0);
    const double delta = v.GetNumber("delta", 0);
    EXPECT_NEAR(delta, std::abs(d_after - d_before), 1e-9) << e.json;
    EXPECT_GE(delta, 3.0) << e.json;
    // The planted shift is exactly 6; estimates carry sampling noise.
    EXPECT_NEAR(delta, 6.0, 2.5) << e.json;
    EXPECT_FALSE(v.GetString("grouping").empty()) << e.json;
    if (v.GetString("side") == "positive" &&
        v.GetNumber("window_index", -1) == 1) {
      positive_seen = true;
      EXPECT_GT(d_after, d_before) << e.json;
    }
  }
  EXPECT_TRUE(positive_seen) << "no positive-side alert at the shift";
}

// A stationary stream — fresh samples from the SAME process each
// window — must never alert.
TEST(MonitorDriftTest, NeverFiresOnStationaryStream) {
  LinearScmOptions options;
  options.num_rows = 1200;
  options.ate = 2.0;
  const size_t n = options.num_rows;
  const GeneratedDataset first = MakeLinearScmDataset(options);

  StreamMonitor monitor("m-flat", ScmSpec(n, first.dag, 3.0), first.table,
                        nullptr);
  monitor.OnAppend(first.table.MaterializeRows(0, n));
  for (uint64_t seed : {101u, 202u, 303u}) {
    LinearScmOptions next = options;
    next.seed = seed;
    const GeneratedDataset ds = MakeLinearScmDataset(next);
    monitor.OnAppend(ds.table.MaterializeRows(0, n));
  }
  EXPECT_EQ(monitor.Status().windows_evaluated, 4u);
  EXPECT_TRUE(DriftEvents(monitor).empty())
      << DriftEvents(monitor).front().json;
}

// Top-k churn: when the group structure is replaced wholesale between
// windows, the churn alert fires with the entered/left pattern lists.
TEST(MonitorChurnTest, FiresOnGroupTurnover) {
  auto make_rows = [](const std::vector<std::string>& groups,
                      size_t rows_per_group) {
    std::vector<std::vector<Value>> rows;
    for (const std::string& g : groups) {
      for (size_t i = 0; i < rows_per_group; ++i) {
        const bool treated = i % 2 == 0;
        rows.push_back({Value(g), Value(treated ? "hi" : "lo"),
                        Value(treated ? 10.0 + i * 0.01 : 1.0 + i * 0.01)});
      }
    }
    return rows;
  };
  Table schema;
  schema.AddColumn("grp", ColumnType::kCategorical);
  schema.AddColumn("trt", ColumnType::kCategorical);
  schema.AddColumn("val", ColumnType::kDouble);

  JsonWriter w;
  w.BeginObject()
      .Key("table").String("t")
      .Key("group_by").BeginArray().String("grp").EndArray()
      .Key("avg").String("val")
      .Key("dag_text").String("trt -> val\n")
      .Key("grouping_attrs").BeginArray().String("grp").EndArray()
      .Key("treatment_attrs").BeginArray().String("trt").EndArray()
      .Key("k").Uint(3)
      .Key("theta").Double(0.3)
      .Key("support").Double(0.1)
      .Key("alpha").Double(0.99)
      .Key("min_group_size").Uint(3)
      .Key("window").BeginObject()
      .Key("kind").String("tumbling")
      .Key("size_rows").Uint(120)
      .EndObject()
      .Key("thresholds").BeginObject()
      .Key("topk_churn").Double(0.5)
      .EndObject()
      .EndObject();

  StreamMonitor monitor("m-churn", w.str(), schema, nullptr);
  monitor.OnAppend(make_rows({"a", "b", "c"}, 40));  // window 0
  monitor.OnAppend(make_rows({"d", "e", "f"}, 40));  // window 1: turnover
  monitor.OnAppend(make_rows({"d", "e", "f"}, 40));  // window 2: stable

  std::vector<MonitorEvent> churn;
  for (const MonitorEvent& e : monitor.EventsSince(0)) {
    if (JsonValue::Parse(e.json).GetString("type") == "topk_churn") {
      churn.push_back(e);
    }
  }
  ASSERT_EQ(churn.size(), 1u) << "churn must fire exactly once";
  const JsonValue v = JsonValue::Parse(churn[0].json);
  EXPECT_EQ(v.GetNumber("window_index", -1), 1);
  EXPECT_EQ(v.GetNumber("churn", 0), 1.0);
  ASSERT_NE(v.Find("entered"), nullptr);
  ASSERT_NE(v.Find("left"), nullptr);
  EXPECT_FALSE(v.Find("entered")->AsArray().empty());
  EXPECT_FALSE(v.Find("left")->AsArray().empty());
}

// Regression for the expiry byte-accounting fix: cycling the same
// window content through many tumbling windows must keep resident cache
// bytes bounded — if expiry failed to decrement the engine/context
// accounting, bytes would grow linearly with the window count.
TEST(MonitorResourceTest, ResidentBytesBoundedAcrossWindowCycling) {
  LinearScmOptions options;
  options.num_rows = 400;
  const GeneratedDataset ds = MakeLinearScmDataset(options);
  const size_t n = ds.table.NumRows();
  const auto rows = ds.table.MaterializeRows(0, n);

  StreamMonitor monitor("m-bytes", ScmSpec(n, ds.dag, 0.0), ds.table,
                        nullptr);
  monitor.OnAppend(rows);
  const size_t after_first = monitor.Status().cache_bytes;
  ASSERT_GT(after_first, 0u);
  size_t max_bytes = after_first;
  for (int window = 1; window < 8; ++window) {
    monitor.OnAppend(rows);
    max_bytes = std::max(max_bytes, monitor.Status().cache_bytes);
  }
  EXPECT_EQ(monitor.Status().windows_evaluated, 8u);
  // Identical content per window: steady state, not linear growth. The
  // factor leaves room for carried-plus-fresh state during migration.
  EXPECT_LE(max_bytes, after_first * 3)
      << "resident bytes grew across expiry (leaked accounting?)";
}

// Registry wiring: monitors receive service appends through the
// observer, List/Get/Remove behave, and events flow end to end.
TEST(MonitorRegistryTest, ObservesServiceAppends) {
  LinearScmOptions options;
  options.num_rows = 400;
  const GeneratedDataset ds = MakeLinearScmDataset(options);
  const size_t n = ds.table.NumRows();

  ExplanationService service(ServiceOptions{});
  service.RegisterTable("t", std::make_shared<const Table>(ds.table.Head(0)));
  MonitorRegistry registry(service);

  const auto monitor = registry.Create(ScmSpec(n, ds.dag, 0.0));
  EXPECT_EQ(monitor->id(), "m1");
  EXPECT_EQ(registry.Get("m1"), monitor);
  EXPECT_EQ(registry.Get("m2"), nullptr);
  EXPECT_EQ(registry.List().size(), 1u);

  service.Append("t", ds.table.MaterializeRows(0, n));
  EXPECT_EQ(monitor->Status().rows_observed, n);
  EXPECT_EQ(monitor->Status().windows_evaluated, 1u);

  // A second monitor on the same table sees only subsequent appends.
  const auto late = registry.Create(ScmSpec(n, ds.dag, 0.0));
  EXPECT_EQ(late->id(), "m2");
  service.Append("t", ds.table.MaterializeRows(0, n));
  EXPECT_EQ(monitor->Status().windows_evaluated, 2u);
  EXPECT_EQ(late->Status().rows_observed, n);
  EXPECT_EQ(late->Status().windows_evaluated, 1u);

  EXPECT_TRUE(registry.Remove("m1"));
  EXPECT_FALSE(registry.Remove("m1"));
  EXPECT_EQ(registry.List().size(), 1u);

  // Unknown table in the spec is rejected before an id is consumed.
  EXPECT_THROW(registry.Create(
                   "{\"table\":\"nope\",\"group_by\":[\"G\"],\"avg\":\"O\","
                   "\"window\":{\"size_rows\":10}}"),
               std::out_of_range);
  EXPECT_EQ(registry.Create(ScmSpec(n, ds.dag, 0.0))->id(), "m3");
}

// Malformed specs must throw instead of constructing a broken monitor.
TEST(MonitorSpecTest, RejectsMalformedSpecs) {
  Table schema;
  schema.AddColumn("g", ColumnType::kCategorical);
  schema.AddColumn("y", ColumnType::kDouble);
  auto spec = [](const std::string& window_json) {
    return "{\"table\":\"t\",\"group_by\":[\"g\"],\"avg\":\"y\"," +
           window_json + "}";
  };
  // Missing window, zero-size window, sliding further than the window,
  // unknown kind, bad thresholds.
  EXPECT_THROW(StreamMonitor("m", "{\"table\":\"t\"}", schema, nullptr),
               std::runtime_error);
  EXPECT_THROW(StreamMonitor("m",
                             "{\"group_by\":[\"g\"],\"avg\":\"y\","
                             "\"window\":{\"size_rows\":5}}",
                             schema, nullptr),
               std::runtime_error);
  EXPECT_THROW(
      StreamMonitor("m", spec("\"window\":{\"size_rows\":0}"), schema,
                    nullptr),
      std::runtime_error);
  EXPECT_THROW(
      StreamMonitor("m",
                    spec("\"window\":{\"kind\":\"sliding\",\"size_rows\":4,"
                         "\"slide_rows\":9}"),
                    schema, nullptr),
      std::runtime_error);
  EXPECT_THROW(
      StreamMonitor("m", spec("\"window\":{\"kind\":\"hopping\","
                              "\"size_rows\":4}"),
                    schema, nullptr),
      std::runtime_error);
  EXPECT_THROW(
      StreamMonitor("m",
                    spec("\"window\":{\"size_rows\":4},"
                         "\"thresholds\":{\"topk_churn\":1.5}"),
                    schema, nullptr),
      std::runtime_error);
  // A valid spec constructs.
  StreamMonitor ok("m", spec("\"window\":{\"size_rows\":4}"), schema,
                   nullptr);
  EXPECT_EQ(ok.Status().rows_observed, 0u);
}

// Snapshot round trip: a monitor snapshotted mid-stream and restored
// into a fresh registry/service must continue bit-identically — same
// events (same seqs, same payloads) as a monitor that never stopped.
TEST(MonitorSnapshotTest, RestoredMonitorContinuesBitIdentically) {
  TempDir dir;
  LinearScmOptions base;
  base.num_rows = 600;
  base.ate = 2.0;
  LinearScmOptions shifted = base;
  shifted.ate = 8.0;
  const GeneratedDataset a = MakeLinearScmDataset(base);
  const GeneratedDataset b = MakeLinearScmDataset(shifted);
  const size_t n = a.table.NumRows();
  const std::string spec = ScmSpec(n, a.dag, 3.0);

  // Reference: one uninterrupted life over windows [a, a, b].
  StreamMonitor reference("m1", spec, a.table, nullptr);
  reference.OnAppend(a.table.MaterializeRows(0, n));
  reference.OnAppend(a.table.MaterializeRows(0, n));
  reference.OnAppend(b.table.MaterializeRows(0, n));

  // Interrupted: window a + half of the second a-window, snapshot, kill.
  ServiceOptions persistent;
  persistent.data_dir = dir.path;
  {
    ExplanationService service(persistent);
    service.RegisterTable("t",
                          std::make_shared<const Table>(a.table.Head(0)));
    MonitorRegistry registry(service);
    registry.Create(spec);
    service.Append("t", a.table.MaterializeRows(0, n));
    service.Append("t", a.table.MaterializeRows(0, n / 2));
    EXPECT_GT(registry.SaveSnapshot(), 0u);
  }

  // Restore into a fresh process image and stream the remainder. The
  // monitor restore needs its watched table registered (only the schema
  // binds — the monitor's own window table rides in its snapshot).
  ExplanationService service(persistent);
  service.RegisterTable("t", std::make_shared<const Table>(a.table.Head(0)));
  MonitorRegistry registry(service);
  ASSERT_EQ(registry.RestoreMonitors(), 1u);
  const auto restored = registry.Get("m1");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Status().rows_observed, n + n / 2);
  service.Append("t", a.table.MaterializeRows(n / 2, n));
  service.Append("t", b.table.MaterializeRows(0, n));

  // The next registry id does not collide with the restored monitor.
  EXPECT_EQ(registry.Create(spec)->id(), "m2");

  const auto expected = reference.EventsSince(0);
  const auto actual = restored->EventsSince(0);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].seq, expected[i].seq);
    EXPECT_EQ(actual[i].json, expected[i].json) << "event " << i;
  }
  EXPECT_EQ(restored->Status().windows_evaluated,
            reference.Status().windows_evaluated);

  // A stale snapshot (spec changed) restores nothing but does not throw.
  MonitorRegistry fresh_registry(service);
  EXPECT_EQ(fresh_registry.RestoreMonitors(), 1u);
}

// Events API: seq numbering, since-filtering, and the long-poll wait.
TEST(MonitorEventsTest, SinceFilteringAndWait) {
  auto make_rows = [](double shift, size_t count) {
    std::vector<std::vector<Value>> rows;
    for (size_t i = 0; i < count; ++i) {
      const bool treated = i % 2 == 0;
      rows.push_back({Value(i % 3 == 0 ? "a" : "b"),
                      Value(treated ? "hi" : "lo"),
                      Value((treated ? 8.0 + shift : 1.0) + i * 0.01)});
    }
    return rows;
  };
  Table schema;
  schema.AddColumn("grp", ColumnType::kCategorical);
  schema.AddColumn("trt", ColumnType::kCategorical);
  schema.AddColumn("val", ColumnType::kDouble);
  StreamMonitor monitor(
      "m-ev",
      "{\"table\":\"t\",\"group_by\":[\"grp\"],\"avg\":\"val\","
      "\"dag_text\":\"trt -> val\\n\",\"grouping_attrs\":[\"grp\"],"
      "\"treatment_attrs\":[\"trt\"],\"alpha\":0.99,\"min_group_size\":3,"
      "\"support\":0.1,\"emit_summaries\":true,"
      "\"window\":{\"size_rows\":60}}",
      schema, nullptr);

  // No events yet: a zero-timeout wait returns immediately and empty.
  EXPECT_TRUE(monitor.WaitEventsSince(0, 0).empty());

  monitor.OnAppend(make_rows(0.0, 60));
  monitor.OnAppend(make_rows(2.0, 60));
  const auto all = monitor.EventsSince(0);
  ASSERT_EQ(all.size(), 2u);  // one summary per window
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[1].seq, 2u);
  EXPECT_EQ(monitor.EventsSince(1).size(), 1u);
  EXPECT_EQ(monitor.EventsSince(1)[0].seq, 2u);
  EXPECT_TRUE(monitor.EventsSince(2).empty());
  // A wait on already-buffered events returns them without blocking.
  EXPECT_EQ(monitor.WaitEventsSince(0, 60000).size(), 2u);
}

}  // namespace
}  // namespace causumx
