// Unit tests for the two-phase simplex LP solver.

#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace causumx {
namespace {

TEST(SimplexTest, SimpleTwoVariableLp) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj 12.
  LinearProgram lp;
  lp.objective = {3, 2};
  lp.upper_bounds = {LinearProgram::kInf, LinearProgram::kInf};
  lp.AddRow({1, 1}, ConstraintSense::kLe, 4);
  lp.AddRow({1, 3}, ConstraintSense::kLe, 6);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 12.0, 1e-6);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-6);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-6);
}

TEST(SimplexTest, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.upper_bounds = {LinearProgram::kInf, LinearProgram::kInf};
  lp.AddRow({2, 1}, ConstraintSense::kLe, 4);
  lp.AddRow({1, 2}, ConstraintSense::kLe, 4);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 8.0 / 3.0, 1e-6);
  EXPECT_NEAR(sol.values[0], 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(sol.values[1], 4.0 / 3.0, 1e-6);
}

TEST(SimplexTest, GeConstraintsNeedPhase1) {
  // max -x s.t. x >= 3 -> x = 3, obj -3.
  LinearProgram lp;
  lp.objective = {-1};
  lp.upper_bounds = {LinearProgram::kInf};
  lp.AddRow({1}, ConstraintSense::kGe, 3);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-6);
  EXPECT_NEAR(sol.objective_value, -3.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + 2y s.t. x + y = 5, y <= 3 -> y=3, x=2, obj 8.
  LinearProgram lp;
  lp.objective = {1, 2};
  lp.upper_bounds = {LinearProgram::kInf, 3.0};
  lp.AddRow({1, 1}, ConstraintSense::kEq, 5);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-6);
  EXPECT_NEAR(sol.values[1], 3.0, 1e-6);
  EXPECT_NEAR(sol.objective_value, 8.0, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 simultaneously.
  LinearProgram lp;
  lp.objective = {1};
  lp.upper_bounds = {LinearProgram::kInf};
  lp.AddRow({1}, ConstraintSense::kLe, 1);
  lp.AddRow({1}, ConstraintSense::kGe, 2);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram lp;
  lp.objective = {1};
  lp.upper_bounds = {LinearProgram::kInf};
  lp.AddRow({-1}, ConstraintSense::kLe, 0);  // x >= 0 only
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, UpperBoundsRespected) {
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.upper_bounds = {0.5, 0.25};
  lp.AddRow({1, 1}, ConstraintSense::kLe, 10);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 0.5, 1e-6);
  EXPECT_NEAR(sol.values[1], 0.25, 1e-6);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2  <=>  x >= 2.
  LinearProgram lp;
  lp.objective = {-1};
  lp.upper_bounds = {LinearProgram::kInf};
  lp.AddRow({-1}, ConstraintSense::kLe, -2);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy);
  // Bland's rule must still terminate at the optimum.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.upper_bounds = {LinearProgram::kInf, LinearProgram::kInf};
  lp.AddRow({1, 0}, ConstraintSense::kLe, 1);
  lp.AddRow({1, 0}, ConstraintSense::kLe, 1);
  lp.AddRow({0, 1}, ConstraintSense::kLe, 1);
  lp.AddRow({1, 1}, ConstraintSense::kLe, 2);
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 2.0, 1e-6);
}

TEST(SimplexTest, RowArityMismatchThrows) {
  LinearProgram lp;
  lp.objective = {1, 2};
  EXPECT_THROW(lp.AddRow({1}, ConstraintSense::kLe, 1),
               std::invalid_argument);
}

TEST(SimplexTest, MaxKCoverRelaxationShape) {
  // The Fig. 5 LP on a tiny instance: 3 patterns, 4 groups, k=1,
  // theta=0.5. Pattern coverages: {1,2}, {3}, {1,2,3,4} with weights
  // 5, 4, 3. LP should put most mass on the full-coverage pattern or mix.
  LinearProgram lp;
  lp.objective = {5, 4, 3, 0, 0, 0, 0};
  lp.upper_bounds.assign(7, 1.0);
  lp.AddRow({1, 1, 1, 0, 0, 0, 0}, ConstraintSense::kLe, 1);        // size
  lp.AddRow({-1, 0, -1, 1, 0, 0, 0}, ConstraintSense::kLe, 0);      // t1
  lp.AddRow({-1, 0, -1, 0, 1, 0, 0}, ConstraintSense::kLe, 0);      // t2
  lp.AddRow({0, -1, -1, 0, 0, 1, 0}, ConstraintSense::kLe, 0);      // t3
  lp.AddRow({0, 0, -1, 0, 0, 0, 1}, ConstraintSense::kLe, 0);       // t4
  lp.AddRow({0, 0, 0, 1, 1, 1, 1}, ConstraintSense::kGe, 2);        // cover
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Feasibility of rounding requires fractional mass on covering patterns.
  EXPECT_GT(sol.objective_value, 3.0 - 1e-6);
  double g_total = sol.values[0] + sol.values[1] + sol.values[2];
  EXPECT_LE(g_total, 1.0 + 1e-6);
}

}  // namespace
}  // namespace causumx
