// Unit tests for the Apriori frequent-pattern miner.

#include <gtest/gtest.h>

#include <map>

#include "mining/apriori.h"

namespace causumx {
namespace {

// 10 rows over two attributes with known supports.
Table MakeTable() {
  Table t;
  t.AddColumn("color", ColumnType::kCategorical);
  t.AddColumn("shape", ColumnType::kCategorical);
  t.AddColumn("y", ColumnType::kDouble);
  const char* colors[] = {"red", "red", "red", "red", "red",
                          "red", "blue", "blue", "blue", "green"};
  const char* shapes[] = {"circle", "circle", "circle", "square", "square",
                          "square", "circle", "circle", "square", "square"};
  for (int i = 0; i < 10; ++i) {
    t.AddRow({Value(colors[i]), Value(shapes[i]),
              Value(static_cast<double>(i))});
  }
  return t;
}

std::map<std::string, size_t> SupportByPattern(
    const std::vector<FrequentPattern>& patterns) {
  std::map<std::string, size_t> m;
  for (const auto& p : patterns) m[p.pattern.ToString()] = p.support;
  return m;
}

TEST(AprioriTest, SingleItemSupports) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.1;  // >= 1 row
  opt.max_length = 1;
  const auto patterns =
      MineFrequentPatterns(t, {"color", "shape"}, opt);
  const auto support = SupportByPattern(patterns);
  EXPECT_EQ(support.at("color = red"), 6u);
  EXPECT_EQ(support.at("color = blue"), 3u);
  EXPECT_EQ(support.at("color = green"), 1u);
  EXPECT_EQ(support.at("shape = circle"), 5u);
  EXPECT_EQ(support.at("shape = square"), 5u);
}

TEST(AprioriTest, ThresholdPrunes) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.3;  // >= 3 rows
  opt.max_length = 1;
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  const auto support = SupportByPattern(patterns);
  EXPECT_TRUE(support.count("color = red"));
  EXPECT_TRUE(support.count("color = blue"));
  EXPECT_FALSE(support.count("color = green"));
}

TEST(AprioriTest, PairConjunctions) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.2;  // >= 2 rows
  opt.max_length = 2;
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  const auto support = SupportByPattern(patterns);
  EXPECT_EQ(support.at("color = red AND shape = circle"), 3u);
  EXPECT_EQ(support.at("color = red AND shape = square"), 3u);
  EXPECT_EQ(support.at("color = blue AND shape = circle"), 2u);
  // blue+square has support 1 < 2: pruned.
  EXPECT_FALSE(support.count("color = blue AND shape = square"));
}

TEST(AprioriTest, NoSameAttributeConjunctions) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.05;
  opt.max_length = 2;
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.pattern.Attributes().size(), p.pattern.Size())
        << p.pattern.ToString();
  }
}

TEST(AprioriTest, SupportMonotonicity) {
  // Property: support of a conjunction never exceeds either conjunct's.
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.1;
  opt.max_length = 2;
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  const auto support = SupportByPattern(patterns);
  for (const auto& p : patterns) {
    if (p.pattern.Size() != 2) continue;
    for (const auto& pred : p.pattern.predicates()) {
      const Pattern single({pred});
      auto it = support.find(single.ToString());
      ASSERT_NE(it, support.end());
      EXPECT_LE(p.support, it->second);
    }
  }
}

TEST(AprioriTest, RowBitmapsMatchSupport) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.1;
  opt.max_length = 2;
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.rows.Count(), p.support);
    // Bitmap must agree with row-at-a-time evaluation.
    for (size_t r = 0; r < t.NumRows(); ++r) {
      EXPECT_EQ(p.rows.Test(r), p.pattern.Matches(t, r))
          << p.pattern.ToString() << " row " << r;
    }
  }
}

TEST(AprioriTest, WideDomainAttributeSkipped) {
  const Table t = MakeTable();
  AprioriOptions opt;
  opt.min_support = 0.1;
  opt.max_values_per_attribute = 2;  // color has 3 values -> skipped
  const auto patterns = MineFrequentPatterns(t, {"color", "shape"}, opt);
  for (const auto& p : patterns) {
    EXPECT_FALSE(p.pattern.UsesAttribute("color")) << p.pattern.ToString();
  }
}

TEST(AprioriTest, EmptyAttributesYieldNothing) {
  const Table t = MakeTable();
  EXPECT_TRUE(MineFrequentPatterns(t, {}, {}).empty());
}

TEST(AprioriTest, IntegerAttributesSupported) {
  Table t;
  t.AddColumn("x", ColumnType::kInt64);
  for (int i = 0; i < 8; ++i) {
    t.AddRow({Value(int64_t{i % 2})});
  }
  AprioriOptions opt;
  opt.min_support = 0.4;
  const auto patterns = MineFrequentPatterns(t, {"x"}, opt);
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].support, 4u);
}

// Parameterized sweep: mined pattern count shrinks monotonically with the
// support threshold (the Fig. 21 phenomenon at the miner level).
class AprioriThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(AprioriThresholdSweep, CountMonotoneInThreshold) {
  const Table t = MakeTable();
  AprioriOptions low, high;
  low.min_support = GetParam();
  high.min_support = GetParam() + 0.2;
  const auto many = MineFrequentPatterns(t, {"color", "shape"}, low);
  const auto few = MineFrequentPatterns(t, {"color", "shape"}, high);
  EXPECT_GE(many.size(), few.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AprioriThresholdSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));

}  // namespace
}  // namespace causumx
