// Unit tests for Table and CSV I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "dataset/csv.h"
#include "dataset/table.h"

namespace causumx {
namespace {

Table MakeSample() {
  Table t;
  t.AddColumn("name", ColumnType::kCategorical);
  t.AddColumn("age", ColumnType::kInt64);
  t.AddColumn("score", ColumnType::kDouble);
  t.AddRow({Value("alice"), Value(int64_t{30}), Value(9.5)});
  t.AddRow({Value("bob"), Value(int64_t{25}), Value(7.0)});
  t.AddRow({Value("carol"), Value(), Value(8.25)});
  return t;
}

TEST(TableTest, SchemaAndRows) {
  const Table t = MakeSample();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.ColumnNames()[1], "age");
  EXPECT_TRUE(t.ColumnIndex("score").has_value());
  EXPECT_FALSE(t.ColumnIndex("missing").has_value());
  EXPECT_THROW(t.column("missing"), std::out_of_range);
}

TEST(TableTest, DuplicateColumnThrows) {
  Table t;
  t.AddColumn("a", ColumnType::kInt64);
  EXPECT_THROW(t.AddColumn("a", ColumnType::kDouble), std::logic_error);
}

TEST(TableTest, AddColumnAfterRowsThrows) {
  Table t = MakeSample();
  EXPECT_THROW(t.AddColumn("x", ColumnType::kInt64), std::logic_error);
}

TEST(TableTest, RowArityMismatchThrows) {
  Table t;
  t.AddColumn("a", ColumnType::kInt64);
  EXPECT_THROW(t.AddRow({Value(int64_t{1}), Value(int64_t{2})}),
               std::logic_error);
}

TEST(TableTest, SelectRowsPreservesValuesAndNulls) {
  const Table t = MakeSample();
  const Table s = t.SelectRows({2, 0});
  EXPECT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.column("name").GetValue(0).AsString(), "carol");
  EXPECT_TRUE(s.column("age").IsNull(0));
  EXPECT_EQ(s.column("age").GetInt(1), 30);
}

TEST(TableTest, SelectColumnsReorders) {
  const Table t = MakeSample();
  const Table s = t.SelectColumns({"score", "name"});
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.ColumnNames()[0], "score");
  EXPECT_EQ(s.NumRows(), 3u);
  EXPECT_THROW(t.SelectColumns({"nope"}), std::out_of_range);
}

TEST(CsvTest, ParsesTypedColumns) {
  std::istringstream in(
      "name,age,score\n"
      "alice,30,9.5\n"
      "bob,25,7\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column("name").type(), ColumnType::kCategorical);
  EXPECT_EQ(t.column("age").type(), ColumnType::kInt64);
  EXPECT_EQ(t.column("score").type(), ColumnType::kDouble);
  EXPECT_EQ(t.column("age").GetInt(1), 25);
}

TEST(CsvTest, NullTokensBecomeNulls) {
  std::istringstream in(
      "a,b\n"
      "1,x\n"
      ",NA\n");
  const Table t = ReadCsv(in);
  EXPECT_TRUE(t.column("a").IsNull(1));
  EXPECT_TRUE(t.column("b").IsNull(1));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  std::istringstream in(
      "a,b\n"
      "\"x,y\",\"say \"\"hi\"\"\"\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.column("a").GetValue(0).AsString(), "x,y");
  EXPECT_EQ(t.column("b").GetValue(0).AsString(), "say \"hi\"");
}

TEST(CsvTest, RaggedRowThrows) {
  std::istringstream in(
      "a,b\n"
      "1\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(CsvTest, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(CsvTest, RoundTripPreservesData) {
  const Table t = MakeSample();
  std::ostringstream out;
  WriteCsv(t, out);
  std::istringstream in(out.str());
  const Table back = ReadCsv(in);
  EXPECT_EQ(back.NumRows(), t.NumRows());
  EXPECT_EQ(back.column("name").GetValue(0).AsString(), "alice");
  EXPECT_EQ(back.column("age").GetInt(1), 25);
  EXPECT_TRUE(back.column("age").IsNull(2));
  EXPECT_DOUBLE_EQ(back.column("score").GetDouble(2), 8.25);
}

TEST(CsvTest, MixedNumericColumnFallsBackToCategorical) {
  std::istringstream in(
      "a\n"
      "1\n"
      "x\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.column("a").type(), ColumnType::kCategorical);
}

}  // namespace
}  // namespace causumx
