// Unit tests for Table and CSV I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "dataset/csv.h"
#include "dataset/table.h"

namespace causumx {
namespace {

Table MakeSample() {
  Table t;
  t.AddColumn("name", ColumnType::kCategorical);
  t.AddColumn("age", ColumnType::kInt64);
  t.AddColumn("score", ColumnType::kDouble);
  t.AddRow({Value("alice"), Value(int64_t{30}), Value(9.5)});
  t.AddRow({Value("bob"), Value(int64_t{25}), Value(7.0)});
  t.AddRow({Value("carol"), Value(), Value(8.25)});
  return t;
}

TEST(TableTest, SchemaAndRows) {
  const Table t = MakeSample();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.ColumnNames()[1], "age");
  EXPECT_TRUE(t.ColumnIndex("score").has_value());
  EXPECT_FALSE(t.ColumnIndex("missing").has_value());
  EXPECT_THROW(t.column("missing"), std::out_of_range);
}

TEST(TableTest, DuplicateColumnThrows) {
  Table t;
  t.AddColumn("a", ColumnType::kInt64);
  EXPECT_THROW(t.AddColumn("a", ColumnType::kDouble), std::logic_error);
}

TEST(TableTest, AddColumnAfterRowsThrows) {
  Table t = MakeSample();
  EXPECT_THROW(t.AddColumn("x", ColumnType::kInt64), std::logic_error);
}

TEST(TableTest, RowArityMismatchThrows) {
  Table t;
  t.AddColumn("a", ColumnType::kInt64);
  EXPECT_THROW(t.AddRow({Value(int64_t{1}), Value(int64_t{2})}),
               std::logic_error);
}

TEST(TableTest, SelectRowsPreservesValuesAndNulls) {
  const Table t = MakeSample();
  const Table s = t.SelectRows({2, 0});
  EXPECT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.column("name").GetValue(0).AsString(), "carol");
  EXPECT_TRUE(s.column("age").IsNull(0));
  EXPECT_EQ(s.column("age").GetInt(1), 30);
}

TEST(TableTest, SelectColumnsReorders) {
  const Table t = MakeSample();
  const Table s = t.SelectColumns({"score", "name"});
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.ColumnNames()[0], "score");
  EXPECT_EQ(s.NumRows(), 3u);
  EXPECT_THROW(t.SelectColumns({"nope"}), std::out_of_range);
}

TEST(CsvTest, ParsesTypedColumns) {
  std::istringstream in(
      "name,age,score\n"
      "alice,30,9.5\n"
      "bob,25,7\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column("name").type(), ColumnType::kCategorical);
  EXPECT_EQ(t.column("age").type(), ColumnType::kInt64);
  EXPECT_EQ(t.column("score").type(), ColumnType::kDouble);
  EXPECT_EQ(t.column("age").GetInt(1), 25);
}

TEST(CsvTest, NullTokensBecomeNulls) {
  std::istringstream in(
      "a,b\n"
      "1,x\n"
      ",NA\n");
  const Table t = ReadCsv(in);
  EXPECT_TRUE(t.column("a").IsNull(1));
  EXPECT_TRUE(t.column("b").IsNull(1));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  std::istringstream in(
      "a,b\n"
      "\"x,y\",\"say \"\"hi\"\"\"\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.column("a").GetValue(0).AsString(), "x,y");
  EXPECT_EQ(t.column("b").GetValue(0).AsString(), "say \"hi\"");
}

TEST(CsvTest, RaggedRowThrows) {
  std::istringstream in(
      "a,b\n"
      "1\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(CsvTest, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(CsvTest, RoundTripPreservesData) {
  const Table t = MakeSample();
  std::ostringstream out;
  WriteCsv(t, out);
  std::istringstream in(out.str());
  const Table back = ReadCsv(in);
  EXPECT_EQ(back.NumRows(), t.NumRows());
  EXPECT_EQ(back.column("name").GetValue(0).AsString(), "alice");
  EXPECT_EQ(back.column("age").GetInt(1), 25);
  EXPECT_TRUE(back.column("age").IsNull(2));
  EXPECT_DOUBLE_EQ(back.column("score").GetDouble(2), 8.25);
}

TEST(CsvTest, MixedNumericColumnFallsBackToCategorical) {
  std::istringstream in(
      "a\n"
      "1\n"
      "x\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.column("a").type(), ColumnType::kCategorical);
}

TEST(CsvTest, QuotedFieldWithEmbeddedNewline) {
  // The quoted field spans three physical lines (including a blank one);
  // the reader must stitch them into one record, not raise an arity
  // error.
  std::istringstream in(
      "a,b\n"
      "\"line1\nline2\n\nline4\",2\n"
      "plain,3\n");
  const Table t = ReadCsv(in);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column("a").GetValue(0).AsString(), "line1\nline2\n\nline4");
  EXPECT_EQ(t.column("b").GetInt(0), 2);
  EXPECT_EQ(t.column("a").GetValue(1).AsString(), "plain");
}

TEST(CsvTest, RoundTripPreservesNewlinesAndCarriageReturns) {
  Table t;
  t.AddColumn("text", ColumnType::kCategorical);
  t.AddColumn("n", ColumnType::kInt64);
  t.AddRow({Value("multi\nline"), Value(int64_t{1})});
  t.AddRow({Value("carriage\rreturn"), Value(int64_t{2})});
  t.AddRow({Value("both\r\nkinds"), Value(int64_t{3})});

  std::ostringstream out;
  WriteCsv(t, out);
  std::istringstream in(out.str());
  const Table back = ReadCsv(in);
  ASSERT_EQ(back.NumRows(), 3u);
  EXPECT_EQ(back.column("text").GetValue(0).AsString(), "multi\nline");
  EXPECT_EQ(back.column("text").GetValue(1).AsString(), "carriage\rreturn");
  EXPECT_EQ(back.column("text").GetValue(2).AsString(), "both\r\nkinds");
  EXPECT_EQ(back.column("n").GetInt(2), 3);
}

TEST(CsvTest, LateNonNumericCellDemotesInferredTypeWithoutDataLoss) {
  // The probe prefix sees only integers, but a later cell is
  // non-numeric: the column must come back categorical with every value
  // intact instead of silently nulling the stragglers.
  CsvOptions opt;
  opt.type_inference_rows = 2;
  std::istringstream in(
      "a,b\n"
      "1,1.5\n"
      "2,2.5\n"
      "oops,3.5\n"
      "4,not-a-number\n");
  const Table t = ReadCsv(in, opt);
  EXPECT_EQ(t.column("a").type(), ColumnType::kCategorical);
  EXPECT_EQ(t.column("b").type(), ColumnType::kCategorical);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_FALSE(t.column("a").IsNull(r)) << "row " << r;
    EXPECT_FALSE(t.column("b").IsNull(r)) << "row " << r;
  }
  EXPECT_EQ(t.column("a").GetValue(2).AsString(), "oops");
  EXPECT_EQ(t.column("b").GetValue(3).AsString(), "not-a-number");
}

TEST(CsvTest, BareQuoteInUnquotedFieldDoesNotSwallowLines) {
  // A stray quote mid-field is literal (RFC 4180): the record must end
  // at the newline instead of absorbing the rest of the file.
  std::istringstream in(
      "item,qty\n"
      "5\" nails,3\n"
      "hammer,1\n");
  const Table t = ReadCsv(in);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column("item").GetValue(0).AsString(), "5\" nails");
  EXPECT_EQ(t.column("item").GetValue(1).AsString(), "hammer");
  EXPECT_EQ(t.column("qty").GetInt(1), 1);
}

TEST(CsvTest, LateFractionalCellDemotesIntToDouble) {
  CsvOptions opt;
  opt.type_inference_rows = 2;
  std::istringstream in(
      "a\n"
      "1\n"
      "2\n"
      "2.5\n");
  const Table t = ReadCsv(in, opt);
  EXPECT_EQ(t.column("a").type(), ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(t.column("a").GetDouble(2), 2.5);
}

// Fuzzing regression: a duplicate header name used to escape as
// Table::AddColumn's std::logic_error (a programming-error exception)
// instead of a typed parse error for the untrusted input.
TEST(CsvTest, DuplicateHeaderNameIsAParseError) {
  std::istringstream in(
      "a,b,a\n"
      "1,2,3\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

// Header names are compared after trimming, like AddColumn receives them.
TEST(CsvTest, DuplicateHeaderNameAfterTrimIsAParseError) {
  std::istringstream in("a, a \n1,2\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

// Fuzzing regression: a null cell in a single-column table writes as an
// empty line, and the reader's blank-line skip used to drop that row on
// re-read (3 rows round-tripped to 2).
TEST(CsvTest, SingleColumnNullRowSurvivesRoundTrip) {
  std::istringstream in(
      "a\n"
      "1\n"
      "NA\n"
      "2\n");
  const Table t = ReadCsv(in);
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_TRUE(t.column("a").IsNull(1));

  std::ostringstream out;
  WriteCsv(t, out);
  std::istringstream in2(out.str());
  const Table back = ReadCsv(in2);
  ASSERT_EQ(back.NumRows(), 3u);
  EXPECT_EQ(back.column("a").GetInt(0), 1);
  EXPECT_TRUE(back.column("a").IsNull(1));
  EXPECT_EQ(back.column("a").GetInt(2), 2);
}

// Blank lines inside multi-column files stay skippable noise (a real row
// would be ragged); only the single-column case treats them as data.
TEST(CsvTest, BlankLineInMultiColumnFileIsSkipped) {
  std::istringstream in(
      "a,b\n"
      "1,2\n"
      "\n"
      "3,4\n");
  const Table t = ReadCsv(in);
  EXPECT_EQ(t.NumRows(), 2u);
}

// The delta reader follows the same blank-line rule as ReadCsv, so a
// single-column round trip appends every row.
TEST(CsvTest, DeltaSingleColumnNullRowParses) {
  std::istringstream base_in(
      "a\n"
      "1\n");
  const Table base = ReadCsv(base_in);
  std::istringstream delta_in(
      "a\n"
      "5\n"
      "\n"
      "7\n");
  const auto rows = ReadCsvDelta(base, delta_in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[1][0].is_null());
}

// An unterminated quoted field at EOF swallows the rest of the record
// (the quote state machine never closes), so the multi-column row comes
// up ragged — the reader must reject it with a typed parse error, not
// hang waiting for the closing quote or crash.
TEST(CsvTest, UnterminatedQuoteAtEofIsAParseError) {
  std::istringstream in(
      "a,b\n"
      "\"unterminated,2\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

// In a single-column table the swallowed record is still a valid row:
// the unterminated quote yields one field holding the rest of the input.
TEST(CsvTest, UnterminatedQuoteSingleColumnParsesAsOneCell) {
  std::istringstream in(
      "a\n"
      "\"unterminated,2\n");
  const Table t = ReadCsv(in);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.column("a").GetValue(0).AsString(), "unterminated,2");
}

}  // namespace
}  // namespace causumx
