// Unit tests for DirectLiNGAM.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "causal/lingam.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Uniform noise (non-Gaussian) is the LiNGAM identifiability requirement.
double UniformNoise(Rng* rng) { return rng->NextDouble() * 2.0 - 1.0; }

TEST(LingamTest, RecoversTwoVariableDirection) {
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(1);
  for (size_t i = 0; i < 5000; ++i) {
    const double x = UniformNoise(&rng);
    const double y = 1.2 * x + 0.5 * UniformNoise(&rng);
    t.AddRow({Value(x), Value(y)});
  }
  const LingamResult res = RunLingam(t);
  ASSERT_EQ(res.causal_order.size(), 2u);
  EXPECT_EQ(res.causal_order[0], "X");
  EXPECT_TRUE(res.dag.HasEdge("X", "Y"));
  EXPECT_FALSE(res.dag.HasEdge("Y", "X"));
}

TEST(LingamTest, RecoversChainOrder) {
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  t.AddColumn("C", ColumnType::kDouble);
  Rng rng(2);
  for (size_t i = 0; i < 6000; ++i) {
    const double a = UniformNoise(&rng);
    const double b = 1.1 * a + 0.4 * UniformNoise(&rng);
    const double c = 1.1 * b + 0.4 * UniformNoise(&rng);
    t.AddRow({Value(a), Value(b), Value(c)});
  }
  const LingamResult res = RunLingam(t);
  auto pos = [&res](const std::string& n) {
    return std::find(res.causal_order.begin(), res.causal_order.end(), n) -
           res.causal_order.begin();
  };
  EXPECT_LT(pos("A"), pos("B"));
  EXPECT_LT(pos("B"), pos("C"));
  EXPECT_TRUE(res.dag.HasEdge("A", "B"));
  EXPECT_TRUE(res.dag.HasEdge("B", "C"));
}

TEST(LingamTest, PruningDropsWeakEdges) {
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  Rng rng(3);
  for (size_t i = 0; i < 4000; ++i) {
    const double a = UniformNoise(&rng);
    const double b = UniformNoise(&rng);  // independent of A
    t.AddRow({Value(a), Value(b)});
  }
  const LingamResult res = RunLingam(t, /*prune_threshold=*/0.1);
  EXPECT_EQ(res.dag.NumEdges(), 0u);
}

TEST(LingamTest, OutputIsAcyclic) {
  Table t;
  t.AddColumn("A", ColumnType::kDouble);
  t.AddColumn("B", ColumnType::kDouble);
  t.AddColumn("C", ColumnType::kDouble);
  t.AddColumn("D", ColumnType::kDouble);
  Rng rng(4);
  for (size_t i = 0; i < 3000; ++i) {
    const double a = UniformNoise(&rng);
    const double b = a + 0.5 * UniformNoise(&rng);
    const double c = a - b + 0.5 * UniformNoise(&rng);
    const double d = c + 0.5 * UniformNoise(&rng);
    t.AddRow({Value(a), Value(b), Value(c), Value(d)});
  }
  const LingamResult res = RunLingam(t);
  EXPECT_NO_THROW(res.dag.TopologicalOrder());
  EXPECT_EQ(res.causal_order.size(), 4u);
}

TEST(LingamTest, NegentropyPositiveForUniform) {
  Rng rng(5);
  std::vector<double> uniform(20000), gauss(20000);
  for (size_t i = 0; i < uniform.size(); ++i) {
    uniform[i] = (rng.NextDouble() * 2 - 1) * std::sqrt(3.0);  // unit var
    gauss[i] = rng.NextGaussian();
  }
  // Uniform is distinctly non-Gaussian; Gaussian negentropy ~ 0.
  EXPECT_GT(ApproxNegentropy(uniform), 0.02);
  EXPECT_LT(ApproxNegentropy(gauss), 0.02);
}

}  // namespace
}  // namespace causumx
