// Unit tests for the discovery front-end (PC/FCI/LiNGAM/No-DAG) used by
// the DAG-sensitivity experiment (Section 6.6, Table 4).

#include <gtest/gtest.h>

#include "causal/discovery.h"
#include "causal/fci.h"
#include "datagen/german.h"
#include "util/rng.h"

namespace causumx {
namespace {

Table MakeSmallTable() {
  Table t;
  t.AddColumn("X", ColumnType::kDouble);
  t.AddColumn("Z", ColumnType::kDouble);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(1);
  for (size_t i = 0; i < 2000; ++i) {
    const double x = rng.NextGaussian();
    const double z = x + rng.NextGaussian();
    const double y = z + rng.NextGaussian();
    t.AddRow({Value(x), Value(z), Value(y)});
  }
  return t;
}

TEST(DiscoveryTest, NoDagShape) {
  const Table t = MakeSmallTable();
  const CausalDag dag = MakeNoDag(t, "Y");
  EXPECT_EQ(dag.NumNodes(), 3u);
  EXPECT_EQ(dag.NumEdges(), 2u);
  EXPECT_TRUE(dag.HasEdge("X", "Y"));
  EXPECT_TRUE(dag.HasEdge("Z", "Y"));
  EXPECT_FALSE(dag.HasEdge("X", "Z"));
}

TEST(DiscoveryTest, AlgorithmNames) {
  EXPECT_STREQ(DiscoveryAlgorithmName(DiscoveryAlgorithm::kPc), "PC");
  EXPECT_STREQ(DiscoveryAlgorithmName(DiscoveryAlgorithm::kFci), "FCI");
  EXPECT_STREQ(DiscoveryAlgorithmName(DiscoveryAlgorithm::kLingam),
               "LiNGAM");
  EXPECT_STREQ(DiscoveryAlgorithmName(DiscoveryAlgorithm::kNoDag),
               "No-DAG");
}

TEST(DiscoveryTest, DispatchRunsEveryAlgorithm) {
  const Table t = MakeSmallTable();
  for (DiscoveryAlgorithm algo :
       {DiscoveryAlgorithm::kPc, DiscoveryAlgorithm::kFci,
        DiscoveryAlgorithm::kLingam, DiscoveryAlgorithm::kNoDag}) {
    const CausalDag dag = DiscoverDag(t, algo, "Y");
    EXPECT_EQ(dag.NumNodes(), 3u) << DiscoveryAlgorithmName(algo);
    EXPECT_NO_THROW(dag.TopologicalOrder());
  }
}

TEST(DiscoveryTest, FciNoDenserThanPc) {
  // FCI's extra pruning pass can only remove edges relative to PC.
  const Table t = MakeSmallTable();
  const CausalDag pc = DiscoverDag(t, DiscoveryAlgorithm::kPc, "Y");
  const FciResult fci = RunFci(t);
  EXPECT_LE(fci.dag.NumEdges(), pc.NumEdges());
  EXPECT_GE(fci.ci_tests_run, 1u);
}

TEST(DiscoveryTest, RunsOnRealisticDataset) {
  GermanOptions opt;
  opt.num_rows = 500;
  const GeneratedDataset ds = MakeGermanDataset(opt);
  DiscoveryOptions dopt;
  dopt.max_cond_size = 1;  // keep the test fast
  const CausalDag pc =
      DiscoverDag(ds.table, DiscoveryAlgorithm::kPc, "RiskScore", dopt);
  EXPECT_EQ(pc.NumNodes(), ds.table.NumColumns());
  EXPECT_GT(pc.NumEdges(), 0u);
  EXPECT_NO_THROW(pc.TopologicalOrder());
}

TEST(DiscoveryTest, DagStatisticsComparable) {
  // Table 4 protocol sanity: density is edges / (V * (V-1)).
  const Table t = MakeSmallTable();
  const CausalDag dag = DiscoverDag(t, DiscoveryAlgorithm::kNoDag, "Y");
  EXPECT_NEAR(dag.Density(), 2.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace causumx
