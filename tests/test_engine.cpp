// Tests for the shared evaluation engine (src/engine): predicate
// interning, cached bitsets, the estimator context's CATE memo, and the
// property that every evaluation path — row-at-a-time Matches, batched
// Pattern::Evaluate/EvaluateOn, and the engine's cached and bypass paths
// — agrees bit-for-bit on random tables with nulls.

#include <gtest/gtest.h>

#include <vector>

#include "causal/estimator.h"
#include "datagen/synthetic.h"
#include "engine/eval_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace causumx {
namespace {

struct RandomWorld {
  Table table;
  std::vector<SimplePredicate> atoms;
};

RandomWorld MakeWorld(uint64_t seed) {
  RandomWorld w;
  Rng rng(seed);
  w.table.AddColumn("c1", ColumnType::kCategorical);
  w.table.AddColumn("c2", ColumnType::kCategorical);
  w.table.AddColumn("i1", ColumnType::kInt64);
  w.table.AddColumn("d1", ColumnType::kDouble);
  const char* c1_vals[] = {"a", "b", "c"};
  const char* c2_vals[] = {"x", "y"};
  const size_t n = 200 + rng.NextBounded(200);
  for (size_t r = 0; r < n; ++r) {
    // ~5% nulls in each column.
    w.table.AddRow({
        rng.NextBool(0.05) ? Value() : Value(c1_vals[rng.NextBounded(3)]),
        rng.NextBool(0.05) ? Value() : Value(c2_vals[rng.NextBounded(2)]),
        rng.NextBool(0.05) ? Value() : Value(rng.NextInt(0, 9)),
        rng.NextBool(0.05) ? Value() : Value(rng.NextGaussian()),
    });
  }
  w.atoms = {
      SimplePredicate("c1", CompareOp::kEq, Value("a")),
      SimplePredicate("c1", CompareOp::kEq, Value("b")),
      SimplePredicate("c2", CompareOp::kEq, Value("x")),
      // Constant absent from the dictionary: must match nothing (nulls
      // included) on every path.
      SimplePredicate("c1", CompareOp::kEq, Value("zzz")),
      SimplePredicate("i1", CompareOp::kLt, Value(int64_t{5})),
      SimplePredicate("i1", CompareOp::kGe, Value(int64_t{3})),
      SimplePredicate("d1", CompareOp::kGt, Value(0.0)),
      SimplePredicate("d1", CompareOp::kLe, Value(1.0)),
  };
  return w;
}

Pattern RandomPattern(const RandomWorld& w, Rng* rng, size_t max_size) {
  std::vector<SimplePredicate> preds;
  const size_t size = 1 + rng->NextBounded(max_size);
  for (size_t i = 0; i < size; ++i) {
    preds.push_back(w.atoms[rng->NextBounded(w.atoms.size())]);
  }
  return Pattern(std::move(preds));
}

TEST(EvalEngineTest, InterningIsIdempotent) {
  const RandomWorld w = MakeWorld(7);
  EvalEngine engine(w.table);
  const PredicateId a = engine.Intern(w.atoms[0]);
  const PredicateId b = engine.Intern(w.atoms[1]);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, engine.Intern(w.atoms[0]));
  EXPECT_EQ(b, engine.Intern(w.atoms[1]));
  EXPECT_EQ(engine.NumInterned(), 2u);
  EXPECT_EQ(engine.Stats().predicates_interned, 2u);
}

TEST(EvalEngineTest, InterningDistinguishesStructure) {
  Table t;
  t.AddColumn("AB", ColumnType::kCategorical);
  t.AddColumn("A", ColumnType::kCategorical);
  t.AddRow({Value("c"), Value("Bc")});
  EvalEngine engine(t);
  // Same concatenated text, different (attribute, value) split.
  const PredicateId a =
      engine.Intern(SimplePredicate("AB", CompareOp::kEq, Value("c")));
  const PredicateId b =
      engine.Intern(SimplePredicate("A", CompareOp::kEq, Value("Bc")));
  EXPECT_NE(a, b);
  // Same attribute+value, different operator.
  const PredicateId c =
      engine.Intern(SimplePredicate("A", CompareOp::kLe, Value("Bc")));
  EXPECT_NE(b, c);
}

TEST(EvalEngineTest, InterningDistinguishesNearbyDoubleThresholds) {
  // Value::ToString rounds doubles to 6 significant digits; the intern
  // key must not, or `d1 < 1234563` would be served `d1 < 1234561`'s
  // cached bitset.
  Table t;
  t.AddColumn("d1", ColumnType::kDouble);
  t.AddRow({Value(1234562.0)});
  EvalEngine engine(t);
  const SimplePredicate lo("d1", CompareOp::kLt, Value(1234561.0));
  const SimplePredicate hi("d1", CompareOp::kLt, Value(1234563.0));
  EXPECT_NE(engine.Intern(lo), engine.Intern(hi));
  EXPECT_FALSE(engine.Evaluate(Pattern({lo})).Test(0));
  EXPECT_TRUE(engine.Evaluate(Pattern({hi})).Test(0));
}

TEST(EvalEngineTest, BitsetMaterializedOnceAndCounted) {
  const RandomWorld w = MakeWorld(11);
  EvalEngine engine(w.table);
  const PredicateId id = engine.Intern(w.atoms[0]);
  const std::shared_ptr<const Bitset> first = engine.PredicateBits(id);
  const std::shared_ptr<const Bitset> again = engine.PredicateBits(id);
  EXPECT_EQ(first.get(), again.get());  // same cached object
  const EvalEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.bitsets_materialized, 1u);
  EXPECT_EQ(stats.bitset_hits, 1u);
  EXPECT_GT(stats.bitset_bytes, 0u);
  EXPECT_EQ(stats.bitset_bytes, engine.CacheBytes());
}

TEST(EvalEngineTest, EvictLruFreesBytesAndRebuildsIdentically) {
  const RandomWorld w = MakeWorld(21);
  EvalEngine engine(w.table);
  std::vector<Bitset> before;
  for (const auto& atom : w.atoms) {
    before.push_back(engine.Evaluate(Pattern({atom})));
  }
  const size_t bytes = engine.CacheBytes();
  ASSERT_GT(bytes, 0u);

  // Partial eviction frees at least what was asked.
  const size_t freed = engine.EvictLru(bytes / 2);
  EXPECT_GE(freed, bytes / 2);
  EXPECT_EQ(engine.CacheBytes(), bytes - freed);
  EXPECT_GT(engine.Stats().bitsets_evicted, 0u);

  // Full eviction empties the accounted cache.
  engine.EvictLru(engine.CacheBytes());
  EXPECT_EQ(engine.CacheBytes(), 0u);

  // Rebuilt bitsets are bit-identical to the pre-eviction ones.
  for (size_t i = 0; i < w.atoms.size(); ++i) {
    EXPECT_TRUE(engine.Evaluate(Pattern({w.atoms[i]})) == before[i]);
  }
  EXPECT_EQ(engine.CacheBytes(), bytes);
}

TEST(EvalEngineTest, EvictionPrefersLeastRecentlyUsed) {
  const RandomWorld w = MakeWorld(23);
  EvalEngine engine(w.table);
  const PredicateId cold = engine.Intern(w.atoms[0]);
  const PredicateId hot = engine.Intern(w.atoms[1]);
  engine.PredicateBits(cold);
  engine.PredicateBits(hot);  // most recently used
  // Free one bitset's worth: the cold one must go first.
  engine.EvictLru(1);
  const uint64_t evicted_before = engine.Stats().bitsets_evicted;
  EXPECT_EQ(evicted_before, 1u);
  // Touching `hot` now must be a hit (it survived), `cold` a rebuild.
  const EvalEngineStats s0 = engine.Stats();
  engine.PredicateBits(hot);
  EXPECT_EQ(engine.Stats().bitset_hits, s0.bitset_hits + 1);
  engine.PredicateBits(cold);
  EXPECT_EQ(engine.Stats().bitsets_materialized,
            s0.bitsets_materialized + 1);
}

// The satellite property: Matches (row-at-a-time), Evaluate,
// EvaluateOn, and the engine's cached and bypass paths agree
// bit-for-bit on random tables with nulls.
class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, AllEvaluationPathsAgree) {
  const RandomWorld w = MakeWorld(GetParam());
  EvalEngine cached(w.table, /*cache_enabled=*/true);
  EvalEngine bypass(w.table, /*cache_enabled=*/false);
  Rng rng(GetParam() * 131 + 5);
  const size_t n = w.table.NumRows();
  for (int trial = 0; trial < 25; ++trial) {
    const Pattern p = RandomPattern(w, &rng, 3);
    const Bitset reference = p.Evaluate(w.table);
    const Bitset from_cached = cached.Evaluate(p);
    const Bitset from_bypass = bypass.Evaluate(p);
    ASSERT_TRUE(from_cached == reference) << p.ToString();
    ASSERT_TRUE(from_bypass == reference) << p.ToString();
    for (size_t r = 0; r < n; ++r) {
      ASSERT_EQ(reference.Test(r), p.Matches(w.table, r))
          << p.ToString() << " row " << r;
    }
    // Masked evaluation is intersection on every path.
    Bitset mask(n);
    for (size_t r = 0; r < n; ++r) {
      if (rng.NextBool(0.5)) mask.Set(r);
    }
    const Bitset expected = reference & mask;
    ASSERT_TRUE(p.EvaluateOn(w.table, mask) == expected);
    ASSERT_TRUE(cached.EvaluateOn(p, mask) == expected);
    ASSERT_TRUE(bypass.EvaluateOn(p, mask) == expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EvalEngineTest, EmptyPatternMatchesEverything) {
  const RandomWorld w = MakeWorld(3);
  EvalEngine engine(w.table);
  const Bitset all = engine.Evaluate(Pattern());
  EXPECT_EQ(all.Count(), w.table.NumRows());
}

TEST(EvalEngineTest, NumericViewMatchesColumnAccessors) {
  const RandomWorld w = MakeWorld(13);
  EvalEngine engine(w.table);
  for (size_t c = 0; c < w.table.NumColumns(); ++c) {
    const NumericColumnView& view = engine.Numeric(c);
    const Column& col = w.table.column(c);
    ASSERT_EQ(view.values.size(), w.table.NumRows());
    for (size_t r = 0; r < w.table.NumRows(); ++r) {
      EXPECT_EQ(view.valid.Test(r), !col.IsNull(r));
      if (!col.IsNull(r)) {
        EXPECT_EQ(view.values[r], col.GetNumeric(r));
      }
    }
  }
  EXPECT_EQ(engine.Stats().column_views_built, w.table.NumColumns());
}

TEST(EvalEngineTest, ConcurrentEvaluationMatchesSerial) {
  const RandomWorld w = MakeWorld(17);
  Rng rng(99);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 64; ++i) {
    patterns.push_back(RandomPattern(w, &rng, 3));
  }
  std::vector<Bitset> serial;
  for (const auto& p : patterns) serial.push_back(p.Evaluate(w.table));

  EvalEngine engine(w.table);
  std::vector<Bitset> concurrent(patterns.size());
  ThreadPool pool(4);
  pool.ParallelFor(patterns.size(), [&](size_t i) {
    concurrent[i] = engine.Evaluate(patterns[i]);
  });
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_TRUE(concurrent[i] == serial[i]) << patterns[i].ToString();
  }
}

// ---- EstimatorContext -----------------------------------------------------

TEST(EstimatorContextTest, MemoHitsReturnIdenticalEstimates) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  auto engine = std::make_shared<EvalEngine>(ds.table);
  EffectEstimator est(engine, ds.dag);

  const Pattern treatment(
      {SimplePredicate("T1", CompareOp::kEq, Value(int64_t{5}))});
  Bitset all(ds.table.NumRows());
  all.SetAll();
  const EffectEstimate first =
      est.EstimateCate(treatment, ds.default_query.avg_attribute, all);
  const EffectEstimate second =
      est.EstimateCate(treatment, ds.default_query.avg_attribute, all);
  EXPECT_EQ(first.valid, second.valid);
  EXPECT_EQ(first.cate, second.cate);
  EXPECT_EQ(first.std_error, second.std_error);
  EXPECT_EQ(first.p_value, second.p_value);
  const EstimatorCacheStats stats = est.cache_stats();
  EXPECT_EQ(stats.memo_misses, 1u);
  EXPECT_EQ(stats.memo_hits, 1u);
}

TEST(EstimatorContextTest, CachedAndBypassEstimatesAreBitIdentical) {
  SyntheticOptions opt;
  opt.num_rows = 1500;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  auto cached_engine = std::make_shared<EvalEngine>(ds.table, true);
  auto bypass_engine = std::make_shared<EvalEngine>(ds.table, false);
  EffectEstimator cached(cached_engine, ds.dag);
  EffectEstimator bypass(bypass_engine, ds.dag);

  Bitset all(ds.table.NumRows());
  all.SetAll();
  for (int64_t v = 0; v <= 6; ++v) {
    for (const char* attr : {"T1", "T2", "T3"}) {
      const Pattern treatment(
          {SimplePredicate(attr, CompareOp::kEq, Value(v))});
      const EffectEstimate a =
          cached.EstimateCate(treatment, ds.default_query.avg_attribute, all);
      const EffectEstimate b =
          bypass.EstimateCate(treatment, ds.default_query.avg_attribute, all);
      ASSERT_EQ(a.valid, b.valid) << attr << "=" << v;
      ASSERT_EQ(a.cate, b.cate) << attr << "=" << v;
      ASSERT_EQ(a.std_error, b.std_error) << attr << "=" << v;
      ASSERT_EQ(a.p_value, b.p_value) << attr << "=" << v;
      ASSERT_EQ(a.n_treated, b.n_treated) << attr << "=" << v;
      ASSERT_EQ(a.n_used, b.n_used) << attr << "=" << v;
    }
  }
  // The bypass engine must not have populated any predicate cache.
  EXPECT_EQ(bypass_engine->Stats().bitsets_materialized, 0u);
  EXPECT_GT(cached_engine->Stats().bitsets_materialized, 0u);
}

TEST(EstimatorContextTest, SubpopulationsKeyTheMemoSeparately) {
  SyntheticOptions opt;
  opt.num_rows = 1200;
  const GeneratedDataset ds = MakeSyntheticDataset(opt);
  auto engine = std::make_shared<EvalEngine>(ds.table);
  EffectEstimator est(engine, ds.dag);

  const Pattern treatment(
      {SimplePredicate("T1", CompareOp::kEq, Value(int64_t{5}))});
  Bitset all(ds.table.NumRows());
  all.SetAll();
  Bitset half(ds.table.NumRows());
  for (size_t r = 0; r < ds.table.NumRows() / 2; ++r) half.Set(r);

  const EffectEstimate on_all =
      est.EstimateCate(treatment, ds.default_query.avg_attribute, all);
  const EffectEstimate on_half =
      est.EstimateCate(treatment, ds.default_query.avg_attribute, half);
  EXPECT_EQ(est.cache_stats().memo_misses, 2u);
  EXPECT_NE(on_all.n_used, on_half.n_used);
}

}  // namespace
}  // namespace causumx
