// Ground-truth recovery tests: the linear-SCM generator plants a known
// ATE behind genuine confounding, and the estimator must recover it —
// through the backdoor-adjusted regression and through IPW, on the
// serial single-shard path and on sharded multi-threaded engines, with
// bit-identical estimates between the two.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "causal/estimator_context.h"
#include "datagen/synthetic.h"
#include "engine/eval_engine.h"
#include "util/thread_pool.h"

namespace causumx {
namespace {

Pattern TreatedPattern() {
  return Pattern({SimplePredicate("T", CompareOp::kEq, Value("1"))});
}

Bitset AllRows(const Table& table) {
  Bitset all(table.NumRows());
  all.SetAll();
  return all;
}

std::shared_ptr<EvalEngine> MakeEngine(const GeneratedDataset& ds,
                                       size_t shards,
                                       std::shared_ptr<ThreadPool> pool) {
  EvalEngineOptions options;
  options.num_shards = shards;
  options.pool = std::move(pool);
  auto table = std::make_shared<const Table>(ds.table.Clone());
  return std::make_shared<EvalEngine>(table, std::move(options));
}

EffectEstimate Estimate(const GeneratedDataset& ds, const CausalDag& dag,
                        const EstimatorOptions& opt, size_t shards,
                        std::shared_ptr<ThreadPool> pool) {
  auto engine = MakeEngine(ds, shards, std::move(pool));
  EstimatorContext ctx(engine, dag, opt);
  return ctx.EstimateCate(TreatedPattern(), "O", AllRows(engine->table()));
}

TEST(EstimatorGroundTruthTest, RegressionRecoversPlantedAteShardedAndNot) {
  LinearScmOptions gen;
  const GeneratedDataset ds = MakeLinearScmDataset(gen);
  EstimatorOptions opt;
  opt.min_group_size = 10;

  auto pool = std::make_shared<ThreadPool>(4);
  const EffectEstimate serial = Estimate(ds, ds.dag, opt, 1, nullptr);
  ASSERT_TRUE(serial.valid);
  EXPECT_NEAR(serial.cate, gen.ate, 0.15)
      << "adjusted estimate off the planted ATE";
  EXPECT_GT(serial.n_treated, size_t{100});
  EXPECT_GT(serial.n_control, size_t{100});

  for (const size_t shards : {2, 8, 16}) {
    const EffectEstimate sharded = Estimate(ds, ds.dag, opt, shards, pool);
    ASSERT_TRUE(sharded.valid) << "shards=" << shards;
    // Bit-identical, not merely close: the blocked normal-equation
    // reduction makes sharded and serial fits the same doubles.
    EXPECT_EQ(serial.cate, sharded.cate) << "shards=" << shards;
    EXPECT_EQ(serial.std_error, sharded.std_error) << "shards=" << shards;
    EXPECT_EQ(serial.p_value, sharded.p_value) << "shards=" << shards;
    EXPECT_EQ(serial.n_used, sharded.n_used) << "shards=" << shards;
  }
}

TEST(EstimatorGroundTruthTest, IpwRecoversPlantedAteShardedAndNot) {
  LinearScmOptions gen;
  gen.num_rows = 6000;
  const GeneratedDataset ds = MakeLinearScmDataset(gen);
  EstimatorOptions opt;
  opt.min_group_size = 10;
  opt.method = EstimationMethod::kIpw;

  auto pool = std::make_shared<ThreadPool>(4);
  const EffectEstimate serial = Estimate(ds, ds.dag, opt, 1, nullptr);
  ASSERT_TRUE(serial.valid);
  EXPECT_NEAR(serial.cate, gen.ate, 0.3)
      << "IPW estimate off the planted ATE";

  const EffectEstimate sharded = Estimate(ds, ds.dag, opt, 8, pool);
  ASSERT_TRUE(sharded.valid);
  EXPECT_EQ(serial.cate, sharded.cate);
  EXPECT_EQ(serial.std_error, sharded.std_error);
}

// The test has teeth: with the confounders dialed up and no adjustment
// (an empty DAG has an empty backdoor set), the naive treated-minus-
// control difference must be visibly biased away from the planted ATE —
// while the adjusted estimate still lands on it.
TEST(EstimatorGroundTruthTest, UnadjustedEstimateIsBiased) {
  LinearScmOptions gen;
  gen.b1 = 1.5;
  gen.b2 = 1.5;  // both confounders push O the same way: bias accumulates
  gen.confounding = 1.5;
  const GeneratedDataset ds = MakeLinearScmDataset(gen);
  EstimatorOptions opt;
  opt.min_group_size = 10;

  const CausalDag no_dag;  // no edges -> no adjustment
  const EffectEstimate naive = Estimate(ds, no_dag, opt, 4, nullptr);
  ASSERT_TRUE(naive.valid);
  EXPECT_GT(std::fabs(naive.cate - gen.ate), 0.5)
      << "confounding failed to bias the naive contrast — the recovery "
         "tests above would be vacuous";

  const EffectEstimate adjusted = Estimate(ds, ds.dag, opt, 4, nullptr);
  ASSERT_TRUE(adjusted.valid);
  EXPECT_NEAR(adjusted.cate, gen.ate, 0.2);
}

// Subpopulation CATEs (per-G buckets) recover the planted effect too —
// the SCM's effect is homogeneous — and stay bit-identical when sharded.
TEST(EstimatorGroundTruthTest, PerBucketCatesRecoverAteSharded) {
  LinearScmOptions gen;
  gen.num_rows = 8000;
  gen.num_buckets = 4;
  const GeneratedDataset ds = MakeLinearScmDataset(gen);
  EstimatorOptions opt;
  opt.min_group_size = 10;

  auto pool = std::make_shared<ThreadPool>(4);
  auto serial_engine = MakeEngine(ds, 1, nullptr);
  auto sharded_engine = MakeEngine(ds, 8, pool);
  EstimatorContext serial_ctx(serial_engine, ds.dag, opt);
  EstimatorContext sharded_ctx(sharded_engine, ds.dag, opt);
  size_t buckets_checked = 0;
  for (size_t b = 0; b < gen.num_buckets; ++b) {
    const Pattern bucket(
        {SimplePredicate("G", CompareOp::kEq,
                         Value("g" + std::to_string(b)))});
    const Bitset serial_rows = serial_engine->Evaluate(bucket);
    const EffectEstimate serial =
        serial_ctx.EstimateCate(TreatedPattern(), "O", serial_rows);
    const Bitset sharded_rows = sharded_engine->Evaluate(bucket);
    ASSERT_TRUE(serial_rows == sharded_rows);
    const EffectEstimate sharded =
        sharded_ctx.EstimateCate(TreatedPattern(), "O", sharded_rows);
    if (!serial.valid) continue;
    ++buckets_checked;
    EXPECT_NEAR(serial.cate, gen.ate, 0.35) << "bucket " << b;
    EXPECT_EQ(serial.cate, sharded.cate) << "bucket " << b;
    EXPECT_EQ(serial.std_error, sharded.std_error) << "bucket " << b;
  }
  EXPECT_GE(buckets_checked, size_t{3});
}

}  // namespace
}  // namespace causumx
