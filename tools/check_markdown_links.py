#!/usr/bin/env python3
"""Markdown link checker for README + docs/.

Verifies every inline markdown link `[text](target)`:

  * relative file links must resolve (relative to the containing file);
  * `#anchor` fragments must match a heading in the target file,
    GitHub-slugified (lower-case, spaces to dashes, punctuation
    dropped);
  * `http(s)://` links are *not* fetched (CI must not flake on network)
    unless --external is passed, which HEAD-requests each one.

Exit 1 with one line per broken link. Usage:

  check_markdown_links.py FILE_OR_DIR [...] [--external]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linkify
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set:
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                yield lineno, m.group(1)


def check_file(path: Path, external: bool) -> list:
    problems = []
    for lineno, target in links_of(path):
        where = f"{path}:{lineno}"
        if target.startswith(("http://", "https://")):
            if external:
                import urllib.request

                try:
                    req = urllib.request.Request(target, method="HEAD")
                    urllib.request.urlopen(req, timeout=10)
                except Exception as e:  # noqa: BLE001 — report, don't die
                    problems.append(f"{where}: {target} ({e})")
            continue
        if target.startswith(("mailto:", "tel:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in headings_of(path):
                problems.append(f"{where}: missing anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{where}: broken link {target}")
            continue
        if anchor and resolved.suffix.lower() in (".md", ".markdown"):
            if github_slug(anchor) not in headings_of(resolved):
                problems.append(
                    f"{where}: missing anchor #{anchor} in {file_part}"
                )
    return problems


def main(argv) -> int:
    external = "--external" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]
    if not paths:
        print(__doc__)
        return 2
    files = []
    for arg in paths:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        else:
            files.append(p)
    problems = []
    for f in files:
        problems.extend(check_file(f, external))
    for problem in problems:
        print(problem)
    print(
        f"check_markdown_links: {len(files)} files, "
        f"{len(problems)} broken links"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
