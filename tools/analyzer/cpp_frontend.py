"""Textual C++ frontend for causumx-analyzer.

Extracts the intermediate representation (IR) the whole-program checks
run on — includes, class/struct declarations (mutex members, virtual
methods), function definitions with their call sites, RAII lock
acquisitions, throw sites, allocation sites, and try/catch coverage —
without a compiler.

The parse is structural, not grammatical: one pass matches every brace
pair in the comment/string-stripped text, each opening brace is
classified from its header (the text since the previous `;`/`{`/`}`)
as a namespace, class, function definition, or plain block, and
function bodies are then scanned with position-accurate line numbers.
This is tuned to the codebase's idiom (Google-style C++20, RAII locks
from util/thread_annotations.h, no macro-generated functions); it is a
heuristic, not a compiler. `clang_frontend` builds the same IR from
libclang when the bindings are importable (the CI job pins them), and
`checks.py` is frontend-agnostic.
"""

from __future__ import annotations

import bisect
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# --- IR ----------------------------------------------------------------------


@dataclass
class Include:
    line: int  # 1-based
    header: str  # as written, e.g. "engine/eval_engine.h"
    is_system: bool  # <...> include


@dataclass
class ClassInfo:
    name: str  # unqualified, e.g. "PredicateSlot"
    file: str
    line: int
    # (member_name, kind) with kind in {"mutex", "shared_mutex", "condvar"}
    mutex_members: List[Tuple[str, str]] = field(default_factory=list)
    virtual_methods: List[str] = field(default_factory=list)
    # CAUSUMX_REQUIRES on method declarations: method -> lock exprs
    requires: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class CallSite:
    line: int
    name: str  # last name component, e.g. "ParallelFor"
    qualifier: str  # text before the name: "ThreadPool::", "slot->", ""


@dataclass
class Acquisition:
    line: int
    kind: str  # "exclusive" | "shared"
    lock_expr: str  # argument text, e.g. "slot->mu", "intern_mu_"
    scope_end_line: int  # closing line of the enclosing block


@dataclass
class WaitSite:
    line: int
    lock_expr: str  # the mutex passed to CondVar::Wait


@dataclass
class ThrowSite:
    line: int
    text: str


@dataclass
class AllocSite:
    line: int
    what: str  # e.g. "new", "std::make_shared", "container growth"


@dataclass
class TryRegion:
    start_line: int
    body_end_line: int  # closing brace of the try block itself
    end_line: int  # end of the final catch block
    catch_all: bool  # has `catch (...)`
    catch_std: bool  # has a `catch` of std::exception (or a subclass)


@dataclass
class FunctionInfo:
    qualified_name: str  # e.g. "causumx::EvalEngine::SegmentsOf"
    name: str  # last component
    cls: Optional[str]  # enclosing/qualifying class, unqualified
    file: str
    start_line: int
    end_line: int
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    waits: List[WaitSite] = field(default_factory=list)
    throws: List[ThrowSite] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)
    trys: List[TryRegion] = field(default_factory=list)
    fn_refs: List[str] = field(default_factory=list)  # &Name references
    local_types: Dict[str, str] = field(default_factory=dict)  # var -> type


@dataclass
class FileIR:
    path: str  # repo-relative, '/'-separated
    includes: List[Include] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)
    functions: List[FunctionInfo] = field(default_factory=list)
    provided_names: Set[str] = field(default_factory=set)
    used_names: Set[str] = field(default_factory=set)
    raw_lines: List[str] = field(default_factory=list)
    code_text: str = ""  # stripped text, same length/lines as the source


# --- lexical preprocessing ---------------------------------------------------

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(["<])([^">]+)[">]')


def strip_comments_and_strings(text: str) -> str:
    """Blanks comment and string/char-literal contents while preserving
    every character position (newlines survive, so line/column arithmetic
    on the result maps straight back to the source)."""
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' and i > 0 and text[i - 1] == "R":
            m = re.match(r'R"([^(\s\\]{0,16})\(', text[i - 1:i + 20])
            if m:
                delim = ")" + m.group(1) + '"'
                out[i - 1] = " "
                j = text.find(delim, i + 1)
                j = n if j < 0 else j + len(delim)
                for k in range(i, j):
                    if text[k] != "\n":
                        out[k] = " "
                i = j
            else:
                i = _skip_quoted(text, out, i, '"')
        elif c == '"':
            i = _skip_quoted(text, out, i, '"')
        elif c == "'":
            # C++14 digit separator (100'000), not a char literal
            if i > 0 and text[i - 1].isalnum() and i + 1 < n and \
                    text[i + 1].isalnum():
                i += 1
            else:
                i = _skip_quoted(text, out, i, "'")
        else:
            i += 1
    return "".join(out)


def _skip_quoted(text: str, out: List[str], i: int, quote: str) -> int:
    n = len(text)
    i += 1  # keep the opening quote
    while i < n:
        if text[i] == "\\":
            out[i] = " "
            if i + 1 < n and text[i + 1] != "\n":
                out[i + 1] = " "
            i += 2
            continue
        if text[i] == quote:
            return i + 1  # keep the closing quote
        if text[i] == "\n":  # unterminated on this line — bail out
            return i
        out[i] = " "
        i += 1
    return i


# --- structural scan ---------------------------------------------------------

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "else", "do", "case", "default", "break", "continue",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "static_assert", "alignof", "decltype", "noexcept", "co_return",
    "co_await", "co_yield", "assert", "defined", "alignas", "try",
    "operator", "requires", "this",
}

_NAMESPACE_HDR_RE = re.compile(r"\bnamespace\s*(\w*)\s*$")
_CLASS_HDR_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:CAUSUMX_\w+(?:\([^)]*\))?\s+)?(\w+)"
    r"\s*(?:final\s*)?(?::(?!:).*)?$",
    re.DOTALL,
)
_ENUM_HDR_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?(\w+)")
_MUTEX_MEMBER_RE = re.compile(r"\butil::(Mutex|SharedMutex|CondVar)\s+(\w+)\s*;")
_VIRTUAL_RE = re.compile(r"\bvirtual\b[^;{=]*?\b(\w+)\s*\(")
_LOCK_RE = re.compile(
    r"\butil::(MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*[({]([^)}]*)[)}]"
)
_WAIT_RE = re.compile(r"\b([\w.\->]+)\s*\.\s*Wait\s*\(\s*([^)]*)\)")
_THROW_RE = re.compile(r"\bthrow\s+[^;]")
_CALL_RE = re.compile(
    r"(?P<q>(?:[\w\]\)]+\s*(?:::|\.|->)\s*)*)(?P<name>[A-Za-z_]\w*)\s*\("
)
_FN_REF_RE = re.compile(r"&\s*([A-Za-z_]\w*)\b\s*(?![(\w])")
_CATCH_RE = re.compile(r"\bcatch\s*\(([^)]*)\)")
_REQUIRES_RE = re.compile(
    r"\b(\w+)\s*\([^()]*\)\s*(?:const\s*)?"
    r"CAUSUMX_(?:REQUIRES|EXCLUSIVE_LOCKS_REQUIRED|REQUIRES_SHARED)"
    r"\s*\(([^)]*)\)"
)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
_LOCAL_DECL_RE = re.compile(
    r"(?:\bconst\s+)?\b([A-Z]\w+)(?:<[^<>;]*>)?\s*[&*]?\s+(\w+)\s*(?:=|;|\()"
)

_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "new"),
    (re.compile(r"\b(?:m|c|re)alloc\s*\("), "malloc/calloc/realloc"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(
        r"\bstd::(?:vector|deque|map|set|unordered_map|unordered_set|list"
        r"|string|ostringstream|istringstream|stringstream|function)\b"
        r"(?:<[^;{}]*>)?\s+\w+\s*[({;=]"),
     "allocating local construction"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
    (re.compile(
        r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|assign"
        r"|insert|append)\s*\("),
     "container growth"),
    (re.compile(r"\+\s*std::string\b|\bstd::string\s*\("), "string temporary"),
]

# std calls that throw by contract. Unresolved calls outside this set are
# assumed non-throwing, keeping the exception check signal-driven.
THROWING_STD = {
    "at", "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod",
    "stold",
}

_SCOPE_NAMESPACE = "namespace"
_SCOPE_CLASS = "class"
_SCOPE_FUNCTION = "function"
_SCOPE_BLOCK = "block"
_SCOPE_ENUM = "enum"


@dataclass
class _Brace:
    open_pos: int
    close_pos: int
    kind: str
    name: str = ""
    parent: Optional["_Brace"] = None
    header: str = ""
    header_start: int = 0


class _Parser:
    def __init__(self, path: str, text: str):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.nl_pos = [i for i, c in enumerate(self.code) if c == "\n"]
        self.ir = FileIR(path=path, raw_lines=self.raw_lines,
                         code_text=self.code)

    def line_of(self, pos: int) -> int:  # 1-based
        return bisect.bisect_right(self.nl_pos, pos) + 1

    def parse(self) -> FileIR:
        for idx, raw in enumerate(self.raw_lines):
            m = _INCLUDE_RE.match(raw)
            if m:
                self.ir.includes.append(
                    Include(idx + 1, m.group(2), m.group(1) == "<"))
        for ident in _IDENT_RE.findall(self.code):
            self.ir.used_names.add(ident)
        braces = self._match_braces()
        self._classify(braces)
        self._collect_classes(braces)
        self._collect_functions(braces)
        self._collect_provided(braces)
        return self.ir

    # -- brace structure ------------------------------------------------------

    def _match_braces(self) -> List[_Brace]:
        braces: List[_Brace] = []
        stack: List[_Brace] = []
        # header start: position after the previous ';', '{', '}' or
        # preprocessor line at the same nesting moment.
        last_break = 0
        breaks: List[int] = [0]  # per-depth header anchors
        i = 0
        code = self.code
        n = len(code)
        while i < n:
            c = code[i]
            if c == "#":
                # preprocessor directive: skip to end of (continued) line
                while i < n and code[i] != "\n":
                    if code[i] == "\\" and i + 1 < n and code[i + 1] == "\n":
                        i += 1
                    i += 1
                breaks[-1] = i + 1
            elif c in ";":
                breaks[-1] = i + 1
            elif c == "{":
                b = _Brace(open_pos=i, close_pos=n - 1, kind=_SCOPE_BLOCK,
                           parent=stack[-1] if stack else None,
                           header_start=breaks[-1],
                           header=code[breaks[-1]:i])
                braces.append(b)
                stack.append(b)
                breaks.append(i + 1)
            elif c == "}":
                if stack:
                    stack.pop().close_pos = i
                if len(breaks) > 1:
                    breaks.pop()
                breaks[-1] = i + 1
            i += 1
        _ = last_break
        return braces

    # -- classification -------------------------------------------------------

    def _classify(self, braces: List[_Brace]) -> None:
        for b in braces:
            hdr = b.header.strip()
            parent_kind = b.parent.kind if b.parent else _SCOPE_NAMESPACE
            if parent_kind in (_SCOPE_FUNCTION, _SCOPE_BLOCK, _SCOPE_ENUM):
                b.kind = _SCOPE_BLOCK
                continue
            m = _NAMESPACE_HDR_RE.search(hdr)
            if m:
                b.kind = _SCOPE_NAMESPACE
                b.name = m.group(1)
                continue
            m = _ENUM_HDR_RE.search(hdr)
            if m and "(" not in hdr:
                b.kind = _SCOPE_ENUM
                b.name = m.group(1)
                continue
            m = _CLASS_HDR_RE.search(hdr)
            if m and "(" not in hdr.split(":")[0]:
                b.kind = _SCOPE_CLASS
                b.name = m.group(1)
                continue
            name = self._function_name(hdr)
            if name is not None:
                b.kind = _SCOPE_FUNCTION
                b.name = name
            else:
                b.kind = _SCOPE_BLOCK

    @staticmethod
    def _function_name(hdr: str) -> Optional[str]:
        """The qualified name if `hdr` reads like a function-definition
        header (`ret Name::Sub(args) const noexcept : init_list`), else
        None."""
        if not hdr or hdr.endswith(("=", ",", "(", "[", "]")):
            return None
        # Find the first '(' at paren depth 0; the name precedes it.
        depth = 0
        first_open = -1
        for i, c in enumerate(hdr):
            if c == "(":
                if depth == 0:
                    first_open = i
                    break
            elif c in "<[":
                depth += 1
            elif c in ">]":
                depth = max(0, depth - 1)
        if first_open <= 0:
            return None
        m = re.search(r"((?:~?[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*$",
                      hdr[:first_open])
        if m is None:
            return None
        qname = re.sub(r"\s+", "", m.group(1))
        last = qname.split("::")[-1].lstrip("~")
        if last in _KEYWORDS or not last:
            return None
        # Lambdas: `[...] (args)` — the name search above fails on ']', so
        # already rejected. Control flow rejected via keywords.
        # Reject calls-with-brace-arg shapes: a header holding `=` before
        # the name (assignment / default member init).
        eq = hdr.find("=")
        if 0 <= eq < first_open and "operator" not in hdr[:first_open]:
            return None
        # The parens must be balanced within the header (a definition's
        # argument list closes before the brace).
        if hdr.count("(") != hdr.count(")"):
            return None
        return qname

    # -- classes --------------------------------------------------------------

    def _collect_classes(self, braces: List[_Brace]) -> None:
        for b in braces:
            if b.kind != _SCOPE_CLASS:
                continue
            body = self.code[b.open_pos:b.close_pos + 1]
            info = ClassInfo(name=b.name, file=self.path,
                             line=self.line_of(b.open_pos))
            # Only direct members: mask nested class bodies out.
            masked = self._mask_nested(b, braces)
            for m in _MUTEX_MEMBER_RE.finditer(masked):
                kind = {"Mutex": "mutex", "SharedMutex": "shared_mutex",
                        "CondVar": "condvar"}[m.group(1)]
                info.mutex_members.append((m.group(2), kind))
            for m in _VIRTUAL_RE.finditer(body):
                if m.group(1) not in _KEYWORDS:
                    info.virtual_methods.append(m.group(1))
            for m in _REQUIRES_RE.finditer(masked):
                locks = [re.sub(r"\s+", "", x) for x in m.group(2).split(",")
                         if x.strip()]
                if m.group(1) not in _KEYWORDS and locks:
                    info.requires.setdefault(m.group(1), []).extend(locks)
            self.ir.classes.append(info)

    def _mask_nested(self, b: _Brace, braces: List[_Brace]) -> str:
        chars = list(self.code[b.open_pos:b.close_pos + 1])
        for other in braces:
            if other.parent is b and other.kind in (_SCOPE_CLASS,
                                                    _SCOPE_FUNCTION):
                for k in range(other.open_pos - b.open_pos,
                               min(other.close_pos + 1 - b.open_pos,
                                   len(chars))):
                    if chars[k] != "\n":
                        chars[k] = " "
        return "".join(chars)

    # -- functions ------------------------------------------------------------

    def _collect_functions(self, braces: List[_Brace]) -> None:
        for b in braces:
            if b.kind != _SCOPE_FUNCTION:
                continue
            ns_parts: List[str] = []
            cls: Optional[str] = None
            p = b.parent
            while p is not None:
                if p.kind == _SCOPE_NAMESPACE and p.name:
                    ns_parts.insert(0, p.name)
                elif p.kind == _SCOPE_CLASS:
                    ns_parts.insert(0, p.name)
                    if cls is None:
                        cls = p.name
                p = p.parent
            qparts = [q for q in b.name.split("::") if q]
            if len(qparts) > 1 and cls is None:
                cls = qparts[-2]
            fn = FunctionInfo(
                qualified_name="::".join(ns_parts + qparts),
                name=qparts[-1],
                cls=cls,
                file=self.path,
                start_line=self.line_of(b.header_start + len(b.header)
                                        - len(b.header.lstrip())),
                end_line=self.line_of(b.close_pos),
            )
            self._scan_params(fn, b.header)
            self._scan_body(fn, b, braces)
            self.ir.functions.append(fn)

    def _scan_params(self, fn: FunctionInfo, hdr: str) -> None:
        for m in _LOCAL_DECL_RE.finditer(hdr):
            tname, vname = m.group(1), m.group(2)
            if tname not in _KEYWORDS:
                fn.local_types.setdefault(vname, tname)
        # reference/pointer params: `const EvalEngine& base`
        for m in re.finditer(r"\b([A-Z]\w+)(?:<[^<>]*>)?\s*[&*]\s*(\w+)", hdr):
            fn.local_types.setdefault(m.group(2), m.group(1))

    def _scan_body(self, fn: FunctionInfo, b: _Brace,
                   braces: List[_Brace]) -> None:
        start, end = b.open_pos, b.close_pos
        body = self.code[start:end + 1]
        off = start

        def line(m_start: int) -> int:
            return self.line_of(off + m_start)

        # Innermost enclosing block for lock scope extents.
        inner = [x for x in braces
                 if x.open_pos >= start and x.close_pos <= end]

        def scope_end(pos: int) -> int:
            best = b
            for x in inner:
                if x.open_pos <= pos <= x.close_pos:
                    if x.open_pos > best.open_pos:
                        best = x
            return self.line_of(best.close_pos)

        for m in _LOCK_RE.finditer(body):
            fn.acquisitions.append(Acquisition(
                line=line(m.start()),
                kind="shared" if m.group(1) == "ReaderMutexLock"
                else "exclusive",
                lock_expr=re.sub(r"\s+", "", m.group(2)),
                scope_end_line=scope_end(off + m.start()),
            ))
        for m in _WAIT_RE.finditer(body):
            fn.waits.append(WaitSite(line(m.start()),
                                     re.sub(r"\s+", "", m.group(2))))
        for m in _THROW_RE.finditer(body):
            fn.throws.append(ThrowSite(
                line(m.start()), body[m.start():m.start() + 60].strip()))
        for pat, what in _ALLOC_PATTERNS:
            for m in pat.finditer(body):
                fn.allocs.append(AllocSite(line(m.start()), what))
        for m in _CALL_RE.finditer(body):
            name = m.group("name")
            if name in _KEYWORDS:
                continue
            qual = re.sub(r"\s+", "", m.group("q") or "")
            fn.calls.append(CallSite(line(m.start()), name, qual))
        for m in _FN_REF_RE.finditer(body):
            if m.group(1) not in _KEYWORDS:
                fn.fn_refs.append(m.group(1))
        for m in _LOCAL_DECL_RE.finditer(body):
            tname, vname = m.group(1), m.group(2)
            if tname not in _KEYWORDS:
                fn.local_types.setdefault(vname, tname)

        # try/catch regions: direct or nested child braces whose header
        # ends with `try`, their catch chain read from the text after.
        for x in inner + [b]:
            hdr = x.header.strip()
            if not (hdr == "try" or hdr.endswith(" try") or
                    hdr.endswith("\ttry") or hdr.endswith("\ntry")):
                continue
            region = self._scan_catches(x)
            if region is not None:
                fn.trys.append(region)

    def _scan_catches(self, try_brace: _Brace) -> Optional[TryRegion]:
        code = self.code
        pos = try_brace.close_pos + 1
        catch_all = catch_std = False
        end_pos = try_brace.close_pos
        while True:
            m = re.compile(r"\s*catch\s*\(([^)]*)\)\s*\{").match(code, pos)
            if m is None:
                break
            param = m.group(1).strip()
            if param == "...":
                catch_all = True
            elif "exception" in param or "_error" in param:
                catch_std = True
            depth = 0
            i = m.end() - 1
            while i < len(code):
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            end_pos = i
            pos = i + 1
        if end_pos == try_brace.close_pos:
            return None
        return TryRegion(
            start_line=self.line_of(try_brace.open_pos),
            body_end_line=self.line_of(try_brace.close_pos),
            end_line=self.line_of(end_pos),
            catch_all=catch_all,
            catch_std=catch_std,
        )

    # -- provided names (for unused-include) ----------------------------------

    def _collect_provided(self, braces: List[_Brace]) -> None:
        provided = self.ir.provided_names
        for b in braces:
            if b.kind == _SCOPE_CLASS:
                provided.add(b.name)
            elif b.kind == _SCOPE_ENUM:
                provided.add(b.name)
                for ident in _IDENT_RE.findall(
                        self.code[b.open_pos:b.close_pos]):
                    provided.add(ident)
            elif b.kind == _SCOPE_FUNCTION:
                in_class = any(p.kind == _SCOPE_CLASS
                               for p in self._ancestors(b))
                if not in_class:
                    provided.add(b.name.split("::")[-1])
        # Top-level text (outside every brace that is a class/function):
        top = list(self.code)
        for b in braces:
            if b.kind in (_SCOPE_CLASS, _SCOPE_FUNCTION, _SCOPE_ENUM,
                          _SCOPE_BLOCK):
                for k in range(b.open_pos, min(b.close_pos + 1, len(top))):
                    if top[k] != "\n":
                        top[k] = " "
        top_text = "".join(top)
        top_text = re.sub(
            r"__attribute__\s*\(\((?:[^()]|\([^()]*\))*\)\)", " ", top_text)
        for m in re.finditer(r"\b(?:using|typedef)\s+(\w+)\s*=", top_text):
            provided.add(m.group(1))
        for m in re.finditer(r"\bconstexpr\b[^;=(]*\b(\w+)\s*=", top_text):
            provided.add(m.group(1))
        # char classes exclude parens so the inner repetition can never
        # trade characters with the `\(...\)` group (no backtracking blowup)
        for m in re.finditer(
                r"\b([A-Za-z_]\w*)\s*\([^()]*(?:\([^()]*\)[^()]*)*\)"
                r"\s*(?:const\s*)?(?:noexcept\s*)?;", top_text):
            if m.group(1) not in _KEYWORDS:
                provided.add(m.group(1))
        for raw in self.raw_lines:
            m = re.match(r"\s*#\s*define\s+(\w+)", raw)
            if m:
                provided.add(m.group(1))

    @staticmethod
    def _ancestors(b: _Brace):
        p = b.parent
        while p is not None:
            yield p
            p = p.parent


def parse_file(path: str, repo_rel: str,
               text: Optional[str] = None) -> FileIR:
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    return _Parser(repo_rel.replace(os.sep, "/"), text).parse()


# --- allow-hatch -------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*causumx-analyzer:\s*allow\(([a-z\-,\s]+)\)(.*)$")


@dataclass
class AllowSite:
    file: str
    line: int  # 1-based, the line carrying the allow() marker
    rules: Set[str]
    reason: str
    target_line: int = 0  # the code line the hatch suppresses
    used: bool = False


def collect_allows(path: str, raw_lines: List[str]) -> List[AllowSite]:
    """An allow hatch is either trailing (code before the comment — it
    covers its own line) or standalone (a comment line — it covers the
    first code line after its comment block, so multi-line reasons
    work). The reason is everything after the rule list, plus any
    continuation comment lines."""
    allows = []
    for idx, raw in enumerate(raw_lines):
        m = ALLOW_RE.search(raw)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2).strip()
        target = idx + 1  # 1-based: own line (trailing hatch)
        if not raw[:m.start()].strip():
            # standalone comment: skip continuation comment lines
            t = idx + 1
            while t < len(raw_lines) and \
                    raw_lines[t].lstrip().startswith("//") and \
                    ALLOW_RE.search(raw_lines[t]) is None:
                reason = (reason + " " +
                          raw_lines[t].lstrip().lstrip("/").strip()).strip()
                t += 1
            target = t + 1  # the first non-comment line
        allows.append(AllowSite(path, idx + 1, rules, reason,
                                target_line=target))
    return allows


def find_allow(allows: List[AllowSite], line: int,
               rule: str) -> Optional[AllowSite]:
    for a in allows:
        if rule in a.rules and line in (a.line, a.target_line):
            return a
    return None


CPP_EXTS = (".h", ".hpp", ".cc", ".cpp", ".cxx", ".inl")


def walk_cpp(root: str) -> List[str]:
    files = []
    for base, _dirs, names in os.walk(root):
        for name in sorted(names):
            if name.endswith(CPP_EXTS):
                files.append(os.path.join(base, name))
    return sorted(files)
