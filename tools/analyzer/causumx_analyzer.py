#!/usr/bin/env python3
"""causumx-analyzer — whole-program architectural checks for causumx.

Four check families over the project source (see checks.ALL_RULES):
layering (module DAG), lock-order/lock-blocking (global lock acquisition
graph), hot-path-{alloc,throw,virtual} (kernel dispatch closure), and
exception-boundary (server/handler roots). Run from anywhere:

    python3 tools/analyzer/causumx_analyzer.py              # scan src/
    python3 tools/analyzer/causumx_analyzer.py --self-test  # fixtures
    python3 tools/analyzer/causumx_analyzer.py --list-rules
    python3 tools/analyzer/causumx_analyzer.py --check lock-order src/

Findings are suppressed by an inline hatch with a mandatory reason:

    // causumx-analyzer: allow(lock-blocking) sharded build intentionally
    // fans out under the slot lock; readers block on the same slot anyway.

or by the checked-in baseline (tools/analyzer/baseline.json, normally
empty — violations get fixed, not baselined). Exit codes: 0 clean,
1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks  # noqa: E402
from checks import AnalyzerConfig, Finding, build_project  # noqa: E402
from cpp_frontend import walk_cpp  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

# The normative module DAG — mirrored in docs/ARCHITECTURE.md. A module
# may always include itself; everything listed is what it may reach.
DEFAULT_CONFIG = {
    "layers": {
        "util": [],
        "storage": ["util"],
        "lp": ["util"],
        "dataset": ["storage", "util"],
        "engine": ["storage", "dataset", "util"],
        "causal": ["storage", "engine", "dataset", "util"],
        "mining": ["causal", "engine", "dataset", "util"],
        "core": ["mining", "causal", "engine", "lp", "dataset", "util"],
        "datagen": ["core", "causal", "dataset", "util"],
        "baselines": ["core", "mining", "causal", "engine", "lp",
                      "dataset", "util"],
        "service": ["core", "mining", "causal", "engine", "lp",
                    "storage", "dataset", "util"],
        "stream": ["service", "core", "mining", "causal", "engine",
                   "storage", "dataset", "util"],
        "server": ["stream", "service", "util"],
    },
    "include_roots": ["src"],
    "dispatch_functions": ["GetScalarOps", "GetAvx2Ops"],
    "hot_path_roots": ["Pattern::EvaluateRange"],
    "exception_roots": ["HttpServer::AcceptLoop",
                        "HttpServer::HandleConnection"],
    "indirect_throwing_calls": ["handler_"],
}

FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "analyzer", "fixtures")
DEFAULT_BASELINE = os.path.join(
    REPO_ROOT, "tools", "analyzer", "baseline.json")


def collect_entries(paths, root):
    entries = []
    for p in paths:
        abs_p = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(abs_p):
            for f in walk_cpp(abs_p):
                entries.append((f, os.path.relpath(f, root)))
        elif os.path.isfile(abs_p):
            entries.append((abs_p, os.path.relpath(abs_p, root)))
        else:
            print(f"causumx-analyzer: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return entries


def load_baseline(path):
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return set(data.get("findings", []))


def run_scan(args) -> int:
    cfg_dict = dict(DEFAULT_CONFIG)
    if args.config:
        with open(args.config, "r", encoding="utf-8") as fh:
            cfg_dict.update(json.load(fh))
    cfg = AnalyzerConfig.from_dict(cfg_dict)
    root = args.root or REPO_ROOT
    paths = args.paths or ["src"]
    entries = collect_entries(paths, root)
    if not entries:
        print("causumx-analyzer: nothing to scan", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend == "auto":
        try:
            import clang_frontend
            frontend = "clang" if clang_frontend.available() else "text"
        except ImportError:
            frontend = "text"

    project = build_project(entries)
    if frontend == "clang":
        import clang_frontend
        if not clang_frontend.available():
            print("causumx-analyzer: --frontend=clang requested but "
                  "clang.cindex is not importable (apt install "
                  "python3-clang-14)", file=sys.stderr)
            return 2
        clang_irs = clang_frontend.build_project_entries(
            entries, root, args.compdb)
        if args.parity:
            return run_parity(project, clang_irs)
        # the clang parse replaces the textual IR where it succeeded;
        # files clang could not parse keep the textual fallback
        project.files.update(clang_irs)
    elif args.parity:
        print("causumx-analyzer: --parity requires --frontend=clang",
              file=sys.stderr)
        return 2

    which = set(args.check) if args.check else None
    findings = checks.run_checks(project, cfg, which)

    baseline = load_baseline(args.baseline)
    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"findings": sorted(f.key() for f in findings)},
                      fh, indent=2)
            fh.write("\n")
        print(f"baseline written: {len(findings)} finding(s) -> "
              f"{args.baseline}")
        return 0

    fresh = [f for f in findings if f.key() not in baseline]
    grandfathered = len(findings) - len(fresh)
    for f in fresh:
        print(f.render())
    scanned = len(project.files)
    status = "clean" if not fresh else f"{len(fresh)} finding(s)"
    extra = f", {grandfathered} baselined" if grandfathered else ""
    print(f"causumx-analyzer [{frontend}]: {scanned} file(s), "
          f"{status}{extra}")
    return 1 if fresh else 0


def run_parity(project, clang_irs) -> int:
    """Report structural drift between the two frontends (never fails:
    the textual frontend is authoritative, this step is advisory)."""
    import clang_frontend
    drift = 0
    for rel, clang_ir in sorted(clang_irs.items()):
        text_ir = project.files.get(rel)
        if text_ir is None:
            continue
        a = clang_frontend.skeleton(text_ir)
        b = clang_frontend.skeleton(clang_ir)
        fa, fb = set(a["functions"]), set(b["functions"])
        for missing in sorted(fb - fa):
            print(f"parity {rel}: text frontend missed function "
                  f"{missing}")
            drift += 1
        la = len(a["acquisitions"])
        lb = len(b["acquisitions"])
        if la != lb:
            print(f"parity {rel}: acquisition count text={la} clang={lb}")
            drift += 1
    print(f"causumx-analyzer parity: {len(clang_irs)} file(s), "
          f"{drift} drift item(s) (advisory)")
    return 0


def run_self_test(args) -> int:
    if not os.path.isdir(FIXTURE_DIR):
        print(f"causumx-analyzer: fixture dir missing: {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    failures = 0
    total = 0
    for name in sorted(os.listdir(FIXTURE_DIR)):
        fdir = os.path.join(FIXTURE_DIR, name)
        if not os.path.isdir(fdir):
            continue
        total += 1
        cfg_path = os.path.join(fdir, "config.json")
        exp_path = os.path.join(fdir, "expected.json")
        cfg_dict = {}
        if os.path.exists(cfg_path):
            with open(cfg_path, "r", encoding="utf-8") as fh:
                cfg_dict = json.load(fh)
        cfg = AnalyzerConfig.from_dict(cfg_dict)
        with open(exp_path, "r", encoding="utf-8") as fh:
            expected = json.load(fh)
        entries = [(f, os.path.relpath(f, fdir))
                   for f in walk_cpp(fdir)]
        project = build_project(entries)
        findings = checks.run_checks(project, cfg)
        got = {(f.rule, f.file, f.line) for f in findings}
        want = {(e["rule"], e["file"], e["line"]) for e in expected}
        if got == want:
            print(f"  PASS {name} ({len(want)} expected finding(s))")
            continue
        failures += 1
        print(f"  FAIL {name}")
        for item in sorted(want - got):
            print(f"    missing:    {item[0]} at {item[1]}:{item[2]}")
        for item in sorted(got - want):
            match = next(f for f in findings
                         if (f.rule, f.file, f.line) == item)
            print(f"    unexpected: {match.render()}")
    print(f"causumx-analyzer self-test: {total - failures}/{total} "
          f"fixture(s) passed")
    return 1 if failures or total == 0 else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="causumx-analyzer",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan (default: src/)")
    ap.add_argument("--check", action="append", metavar="RULE",
                    help="run only this rule (repeatable)")
    ap.add_argument("--frontend", choices=["auto", "text", "clang"],
                    default="text",
                    help="parser backend (default: text — deterministic, "
                         "dependency-free; clang uses libclang bindings)")
    ap.add_argument("--compdb",
                    default=os.path.join(REPO_ROOT, "build",
                                         "compile_commands.json"),
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--config", help="JSON config overriding defaults")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="baseline file of grandfathered finding keys")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--root", help="repo root override (for tests)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite under tests/analyzer/")
    ap.add_argument("--parity", action="store_true",
                    help="with --frontend=clang: report frontend drift "
                         "instead of findings (advisory, always exit 0)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in checks.ALL_RULES:
            print(rule)
        return 0
    if args.check:
        bad = set(args.check) - set(checks.ALL_RULES) - {"hot-path"}
        if bad:
            print(f"causumx-analyzer: unknown rule(s): "
                  f"{', '.join(sorted(bad))} (see --list-rules)",
                  file=sys.stderr)
            return 2
    if args.self_test:
        return run_self_test(args)
    return run_scan(args)


if __name__ == "__main__":
    sys.exit(main())
