"""Whole-program checks for causumx-analyzer.

All four checks run over the frontend-agnostic IR (`cpp_frontend.FileIR`
et al.) — either frontend (textual or libclang) can feed them.

Rules:
  layering             module include edge outside the declared DAG
  unused-include       project include providing no name the file uses
  lock-order           cycle in the global lock acquisition graph
  lock-blocking        lock held across a blocking call / CondVar wait
  hot-path-alloc       heap allocation reachable from a kernel root
  hot-path-throw       throw (or throwing std call) reachable from a root
  hot-path-virtual     virtual dispatch reachable from a kernel root
  exception-boundary   throw may escape a server/handler boundary root
  allow-missing-reason an allow() hatch with no written justification
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from cpp_frontend import (
    Acquisition,
    AllowSite,
    CallSite,
    FileIR,
    FunctionInfo,
    THROWING_STD,
    collect_allows,
    find_allow,
    parse_file,
    walk_cpp,
)

ALL_RULES = [
    "layering",
    "unused-include",
    "lock-order",
    "lock-blocking",
    "hot-path-alloc",
    "hot-path-throw",
    "hot-path-virtual",
    "exception-boundary",
    "allow-missing-reason",
]

# Calls that block the calling thread (work-stealing pool entry points and
# raw socket syscalls). Transitive callers inherit blocking-ness.
DEFAULT_BLOCKING_CALLS = {
    "ParallelFor", "RunOn", "accept", "poll", "recv", "send", "connect",
    "select", "accept4",
}


@dataclass
class AnalyzerConfig:
    # module -> modules it may include (its own module is always allowed)
    layers: Dict[str, Set[str]] = field(default_factory=dict)
    # modules whose files may include anything (e.g. the CLI entry point)
    unrestricted_modules: Set[str] = field(default_factory=set)
    # roots whose include paths are resolved, e.g. ["src"]
    include_roots: List[str] = field(default_factory=lambda: ["src"])
    # function names whose &Fn references seed the hot-path closure
    dispatch_functions: List[str] = field(default_factory=list)
    # qualified-name suffixes that are hot-path roots outright
    hot_path_roots: List[str] = field(default_factory=list)
    # qualified-name suffixes of exception-boundary roots
    exception_roots: List[str] = field(default_factory=list)
    # unresolved callee names treated as may-throw (indirect dispatch)
    indirect_throwing_calls: Set[str] = field(default_factory=set)
    blocking_calls: Set[str] = field(
        default_factory=lambda: set(DEFAULT_BLOCKING_CALLS))

    @staticmethod
    def from_dict(d: dict) -> "AnalyzerConfig":
        cfg = AnalyzerConfig()
        for mod, deps in d.get("layers", {}).items():
            cfg.layers[mod] = set(deps)
        cfg.unrestricted_modules = set(d.get("unrestricted_modules", []))
        cfg.include_roots = list(d.get("include_roots", ["src"]))
        cfg.dispatch_functions = list(d.get("dispatch_functions", []))
        cfg.hot_path_roots = list(d.get("hot_path_roots", []))
        cfg.exception_roots = list(d.get("exception_roots", []))
        cfg.indirect_throwing_calls = set(
            d.get("indirect_throwing_calls", []))
        if "blocking_calls" in d:
            cfg.blocking_calls = set(d["blocking_calls"])
        return cfg


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def key(self) -> str:
        # Line-free so the baseline survives unrelated edits.
        return f"{self.rule}|{self.file}|{self.message}"

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Project:
    files: Dict[str, FileIR]  # repo-relative path -> IR
    allows: Dict[str, List[AllowSite]]

    def functions(self) -> Iterable[FunctionInfo]:
        for ir in self.files.values():
            yield from ir.functions

    def allowed(self, path: str, line: int, rule: str) -> bool:
        a = find_allow(self.allows.get(path, []), line, rule)
        if a is not None:
            a.used = True
            return True
        return False


def build_project(entries: Sequence[Tuple[str, str]]) -> Project:
    """entries: (absolute path, repo-relative path) pairs."""
    files: Dict[str, FileIR] = {}
    allows: Dict[str, List[AllowSite]] = {}
    for abs_path, rel in entries:
        rel = rel.replace(os.sep, "/")
        ir = parse_file(abs_path, rel)
        files[rel] = ir
        allows[rel] = collect_allows(rel, ir.raw_lines)
    return Project(files=files, allows=allows)


# --- helpers: module + include resolution ------------------------------------


def module_of(path: str, cfg: AnalyzerConfig) -> Optional[str]:
    """src/engine/eval_engine.cpp -> "engine"; None for files outside the
    include roots or directly inside one (e.g. src/main.cpp)."""
    for root in cfg.include_roots:
        prefix = root.rstrip("/") + "/"
        if path.startswith(prefix):
            rest = path[len(prefix):]
            if "/" in rest:
                return rest.split("/", 1)[0]
            return None
    return None


def resolve_include(includer: str, header: str, cfg: AnalyzerConfig,
                    files: Dict[str, FileIR]) -> Optional[str]:
    """Map an include spelling to a scanned project file path."""
    for root in cfg.include_roots:
        cand = root.rstrip("/") + "/" + header
        if cand in files:
            return cand
    cand = os.path.dirname(includer) + "/" + header if "/" in includer \
        else header
    cand = os.path.normpath(cand).replace(os.sep, "/")
    if cand in files:
        return cand
    return None


# --- check: layering + unused-include ----------------------------------------


def check_layering(project: Project, cfg: AnalyzerConfig) -> List[Finding]:
    findings: List[Finding] = []
    for path, ir in project.files.items():
        mod = module_of(path, cfg)
        if mod is None or mod in cfg.unrestricted_modules:
            continue
        allowed = cfg.layers.get(mod)
        if allowed is None:
            continue
        for inc in ir.includes:
            if inc.is_system:
                continue
            target = resolve_include(path, inc.header, cfg, project.files)
            if target is None:
                continue
            tmod = module_of(target, cfg)
            if tmod is None or tmod == mod or tmod in allowed:
                continue
            if project.allowed(path, inc.line, "layering"):
                continue
            findings.append(Finding(
                "layering", path, inc.line,
                f'module "{mod}" may not include "{tmod}" '
                f'({inc.header}); allowed: '
                f'{{{", ".join(sorted(allowed)) or "none"}}}'))
    return findings


def check_unused_includes(project: Project,
                          cfg: AnalyzerConfig) -> List[Finding]:
    findings: List[Finding] = []
    for path, ir in project.files.items():
        stem = os.path.splitext(os.path.basename(path))[0]
        for inc in ir.includes:
            if inc.is_system:
                continue
            target = resolve_include(path, inc.header, cfg, project.files)
            if target is None:
                continue
            # a .cpp's own header is always kept
            if os.path.splitext(os.path.basename(target))[0] == stem:
                continue
            provided = project.files[target].provided_names
            if not provided:
                continue  # nothing detectable — assume intentional
            if provided & ir.used_names:
                continue
            if project.allowed(path, inc.line, "unused-include"):
                continue
            findings.append(Finding(
                "unused-include", path, inc.line,
                f"include {inc.header} provides no name this file uses"))
    return findings


# --- helpers: call resolution ------------------------------------------------


class CallIndex:
    def __init__(self, project: Project):
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for fn in project.functions():
            self.by_name.setdefault(fn.name, []).append(fn)

    def resolve(self, caller: FunctionInfo,
                call: CallSite) -> List[FunctionInfo]:
        cands = self.by_name.get(call.name, [])
        if not cands:
            return []
        q = call.qualifier
        if q.endswith("::"):
            hint = q[:-2].split("::")[-1]
            by_cls = [c for c in cands if c.cls == hint]
            if by_cls:
                return by_cls
            by_ns = [c for c in cands if f"{hint}::" in c.qualified_name]
            if by_ns:
                return by_ns
            return []  # qualified but unknown: external (std::, C API)
        if q.endswith("->") or q.endswith("."):
            base = q[:-2] if q.endswith("->") else q[:-1]
            base = re.split(r"->|\.", base)[-1]
            btype = caller.local_types.get(base)
            if btype is not None:
                by_cls = [c for c in cands if c.cls == btype]
                # typed base: either it's a project class method or an
                # external (std) type — never guess across classes
                return by_cls
            if base.endswith("_") or base == "this":
                # member object / explicit this: class unknown, keep any
                # method candidate (conservative over-approximation)
                return [c for c in cands if c.cls is not None]
            # untyped local (std streams etc.): assume external
            return []
        same = [c for c in cands if c.cls == caller.cls and c.cls]
        if same:
            return same
        free = [c for c in cands if c.cls is None]
        if free:
            return free
        return cands


# --- helpers: lock identity --------------------------------------------------


class LockResolver:
    """Resolves acquisition expressions to canonical "Class::member"
    identities. Bare members qualify by the enclosing class; `x->mu`
    resolves `x` through local/param types; otherwise a unique mutex-
    declaring class owning that member name wins."""

    def __init__(self, project: Project):
        self.owners: Dict[str, List[str]] = {}  # member -> owner classes
        self.mutex_classes: Set[str] = set()
        for ir in project.files.values():
            for cls in ir.classes:
                for member, kind in cls.mutex_members:
                    if kind == "condvar":
                        continue
                    self.owners.setdefault(member, []).append(cls.name)
                    self.mutex_classes.add(cls.name)

    def resolve(self, fn: FunctionInfo, expr: str) -> str:
        expr = expr.strip()
        parts = re.split(r"->|\.", expr)
        member = parts[-1]
        owners = self.owners.get(member, [])
        if len(parts) > 1:
            base = parts[-2].lstrip("*&(")
            btype = fn.local_types.get(base)
            if btype and btype in owners:
                return f"{btype}::{member}"
        else:
            if fn.cls and fn.cls in owners:
                return f"{fn.cls}::{member}"
        if len(owners) == 1:
            return f"{owners[0]}::{member}"
        return f"?::{expr}"


# --- check: lock-order + lock-blocking ---------------------------------------


@dataclass
class LockEdge:
    src: str
    dst: str
    file: str
    line: int
    via: str  # holder function's qualified name


def _calls_in_scope(fn: FunctionInfo, acq: Acquisition) -> List[CallSite]:
    return [c for c in fn.calls
            if acq.line < c.line <= acq.scope_end_line]


def build_lock_graph(project: Project, cfg: AnalyzerConfig,
                     index: CallIndex,
                     locks: LockResolver) -> Tuple[List[LockEdge],
                                                   Dict[str, Set[str]]]:
    """Returns (edges, per-function transitive lock summaries)."""
    fns = list(project.functions())
    summaries: Dict[int, Set[str]] = {
        id(fn): {locks.resolve(fn, a.lock_expr) for a in fn.acquisitions}
        for fn in fns
    }
    # fixpoint over the call graph (small; a handful of rounds)
    for _ in range(20):
        changed = False
        for fn in fns:
            s = summaries[id(fn)]
            before = len(s)
            for call in fn.calls:
                for callee in index.resolve(fn, call):
                    s |= summaries[id(callee)]
            if len(s) != before:
                changed = True
        if not changed:
            break

    edges: List[LockEdge] = []
    for fn in fns:
        required: List[str] = []
        for ir in project.files.values():
            for cls in ir.classes:
                if cls.name == fn.cls and fn.name in cls.requires:
                    required += [locks.resolve(fn, e)
                                 for e in cls.requires[fn.name]]
        for acq in fn.acquisitions:
            held = locks.resolve(fn, acq.lock_expr)
            for req in required:
                edges.append(LockEdge(req, held, fn.file, acq.line,
                                      fn.qualified_name))
            # later acquisitions inside the held scope
            for other in fn.acquisitions:
                if acq.line < other.line <= acq.scope_end_line:
                    edges.append(LockEdge(
                        held, locks.resolve(fn, other.lock_expr),
                        fn.file, other.line, fn.qualified_name))
            # locks acquired by callees while this one is held
            for call in _calls_in_scope(fn, acq):
                for callee in index.resolve(fn, call):
                    for dst in summaries[id(callee)]:
                        edges.append(LockEdge(held, dst, fn.file,
                                              call.line,
                                              fn.qualified_name))
    per_fn = {fn.qualified_name: summaries[id(fn)] for fn in fns}
    return edges, per_fn


def _cycles(edges: List[LockEdge]) -> List[List[LockEdge]]:
    """Tarjan SCCs over the lock graph; returns one representative edge
    list per nontrivial SCC (plus genuine self-loops)."""
    adj: Dict[str, List[LockEdge]] = {}
    nodes: Set[str] = set()
    for e in edges:
        adj.setdefault(e.src, []).append(e)
        nodes.add(e.src)
        nodes.add(e.dst)
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            outs = adj.get(node, [])
            for i in range(pi, len(outs)):
                w = outs[i].dst
                if w not in index:
                    work[-1] = (node, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            if low[node] == index[node]:
                scc: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)

    out: List[List[LockEdge]] = []
    for scc in sccs:
        if len(scc) > 1:
            out.append([e for e in edges
                        if e.src in scc and e.dst in scc])
        else:
            (node,) = scc
            self_loops = [e for e in edges
                          if e.src == node and e.dst == node]
            if self_loops:
                out.append(self_loops)
    return out


def check_lock_order(project: Project, cfg: AnalyzerConfig) -> List[Finding]:
    index = CallIndex(project)
    locks = LockResolver(project)
    edges, _ = build_lock_graph(project, cfg, index, locks)
    findings: List[Finding] = []
    for cycle_edges in _cycles(edges):
        cycle_edges.sort(key=lambda e: (e.file, e.line))
        reported = False
        for e in cycle_edges:
            if project.allowed(e.file, e.line, "lock-order"):
                reported = True  # an allow on any edge silences the cycle
                break
        if reported:
            continue
        locks_in_cycle = sorted({e.src for e in cycle_edges} |
                                {e.dst for e in cycle_edges})
        e0 = cycle_edges[0]
        sites = "; ".join(
            f"{e.src}->{e.dst} at {e.file}:{e.line} (in {e.via})"
            for e in cycle_edges[:4])
        findings.append(Finding(
            "lock-order", e0.file, e0.line,
            f"lock acquisition cycle over {{{', '.join(locks_in_cycle)}}}: "
            f"{sites}"))
    return findings


def check_lock_blocking(project: Project,
                        cfg: AnalyzerConfig) -> List[Finding]:
    index = CallIndex(project)
    locks = LockResolver(project)
    fns = list(project.functions())
    # transitive "does this function block?" summary
    blocking: Dict[int, bool] = {}
    for fn in fns:
        direct = any(c.name in cfg.blocking_calls for c in fn.calls) or \
            bool(fn.waits)
        blocking[id(fn)] = direct
    for _ in range(20):
        changed = False
        for fn in fns:
            if blocking[id(fn)]:
                continue
            for call in fn.calls:
                if any(blocking[id(callee)]
                       for callee in index.resolve(fn, call)):
                    blocking[id(fn)] = True
                    changed = True
                    break
        if not changed:
            break

    findings: List[Finding] = []
    for fn in fns:
        for acq in fn.acquisitions:
            held = locks.resolve(fn, acq.lock_expr)
            held_member = held.split("::")[-1]
            for w in fn.waits:
                if acq.line < w.line <= acq.scope_end_line:
                    # the condvar idiom: waiting ON the held lock is fine
                    wait_lock = locks.resolve(fn, w.lock_expr)
                    if wait_lock == held or \
                            w.lock_expr.split("->")[-1].split(".")[-1] \
                            == held_member:
                        continue
                    if project.allowed(fn.file, w.line, "lock-blocking"):
                        continue
                    findings.append(Finding(
                        "lock-blocking", fn.file, w.line,
                        f"{fn.qualified_name} holds {held} across "
                        f"CondVar::Wait({w.lock_expr})"))
            for call in _calls_in_scope(fn, acq):
                is_direct = call.name in cfg.blocking_calls
                is_transitive = any(
                    blocking[id(callee)]
                    for callee in index.resolve(fn, call))
                if not (is_direct or is_transitive):
                    continue
                if project.allowed(fn.file, call.line, "lock-blocking"):
                    continue
                kind = "blocking call" if is_direct else \
                    "call that transitively blocks"
                findings.append(Finding(
                    "lock-blocking", fn.file, call.line,
                    f"{fn.qualified_name} holds {held} across "
                    f"{kind} {call.name}()"))
    return findings


# --- check: hot-path ---------------------------------------------------------


def _hot_roots(project: Project, cfg: AnalyzerConfig,
               index: CallIndex) -> List[FunctionInfo]:
    roots: List[FunctionInfo] = []
    ref_names: Set[str] = set()
    for fn in project.functions():
        if fn.name in cfg.dispatch_functions:
            ref_names.update(fn.fn_refs)
    for fn in project.functions():
        if fn.name in ref_names:
            roots.append(fn)
        elif any(fn.qualified_name.endswith(sfx)
                 for sfx in cfg.hot_path_roots):
            roots.append(fn)
    return roots


def _hot_closure(project: Project, cfg: AnalyzerConfig, index: CallIndex,
                 rule: str) -> Dict[int, Tuple[FunctionInfo, str]]:
    """BFS over the call graph from the hot roots. An allow() naming
    `rule` at a call site prunes that edge (the callee subtree is exempt
    for that rule). Returns id(fn) -> (fn, via-chain)."""
    roots = _hot_roots(project, cfg, index)
    closure: Dict[int, Tuple[FunctionInfo, str]] = {}
    work: List[Tuple[FunctionInfo, str]] = [
        (r, r.qualified_name) for r in roots]
    while work:
        fn, chain = work.pop()
        if id(fn) in closure:
            continue
        closure[id(fn)] = (fn, chain)
        for call in fn.calls:
            if project.allowed(fn.file, call.line, rule):
                continue
            for callee in index.resolve(fn, call):
                if id(callee) not in closure:
                    work.append((callee, f"{chain} -> {callee.name}"))
    return closure


def check_hot_path(project: Project, cfg: AnalyzerConfig) -> List[Finding]:
    index = CallIndex(project)
    findings: List[Finding] = []
    virtual_names: Set[str] = set()
    for ir in project.files.values():
        for cls in ir.classes:
            virtual_names.update(cls.virtual_methods)

    for fn, chain in _hot_closure(project, cfg, index,
                                  "hot-path-alloc").values():
        for alloc in fn.allocs:
            if project.allowed(fn.file, alloc.line, "hot-path-alloc"):
                continue
            findings.append(Finding(
                "hot-path-alloc", fn.file, alloc.line,
                f"{fn.qualified_name} heap-allocates ({alloc.what}) on "
                f"the hot path [{chain}]"))

    for fn, chain in _hot_closure(project, cfg, index,
                                  "hot-path-throw").values():
        for thr in fn.throws:
            if project.allowed(fn.file, thr.line, "hot-path-throw"):
                continue
            findings.append(Finding(
                "hot-path-throw", fn.file, thr.line,
                f"{fn.qualified_name} throws on the hot path [{chain}]"))
        for call in fn.calls:
            if call.name in THROWING_STD and call.qualifier:
                if project.allowed(fn.file, call.line, "hot-path-throw"):
                    continue
                findings.append(Finding(
                    "hot-path-throw", fn.file, call.line,
                    f"{fn.qualified_name} calls throwing std member "
                    f".{call.name}() on the hot path [{chain}]"))

    for fn, chain in _hot_closure(project, cfg, index,
                                  "hot-path-virtual").values():
        for call in fn.calls:
            if call.name not in virtual_names:
                continue
            if call.qualifier.endswith("::") or not call.qualifier:
                continue  # qualified/static calls devirtualize
            if project.allowed(fn.file, call.line, "hot-path-virtual"):
                continue
            findings.append(Finding(
                "hot-path-virtual", fn.file, call.line,
                f"{fn.qualified_name} makes virtual call "
                f"{call.qualifier}{call.name}() on the hot path "
                f"[{chain}]"))
    return findings


# --- check: exception-boundary -----------------------------------------------


def _covered(fn: FunctionInfo, line: int) -> bool:
    """Is `line` inside a try body whose catch chain stops std throws?"""
    for region in fn.trys:
        if region.start_line <= line <= region.body_end_line and \
                (region.catch_all or region.catch_std):
            return True
    return False


def _leak_summaries(project: Project, cfg: AnalyzerConfig,
                    index: CallIndex) -> Dict[int, List[Tuple[int, str]]]:
    """Per function: uncovered sites where an exception can escape it.
    Each entry is (line, description)."""
    fns = list(project.functions())
    leaks: Dict[int, List[Tuple[int, str]]] = {id(fn): [] for fn in fns}
    for fn in fns:
        out = leaks[id(fn)]
        for thr in fn.throws:
            if _covered(fn, thr.line):
                continue
            if project.allowed(fn.file, thr.line, "exception-boundary"):
                continue
            out.append((thr.line, f"throw in {fn.qualified_name}"))
        for call in fn.calls:
            may_throw = (call.name in THROWING_STD and call.qualifier) or \
                call.name in cfg.indirect_throwing_calls
            if not may_throw or _covered(fn, call.line):
                continue
            if project.allowed(fn.file, call.line, "exception-boundary"):
                continue
            what = f"indirect call {call.name}()" \
                if call.name in cfg.indirect_throwing_calls \
                else f"throwing std call .{call.name}()"
            out.append((call.line, f"{what} in {fn.qualified_name}"))
    for _ in range(20):
        changed = False
        for fn in fns:
            out = leaks[id(fn)]
            have = {line for line, _ in out}
            for call in fn.calls:
                if _covered(fn, call.line) or call.line in have:
                    continue
                if project.allowed(fn.file, call.line,
                                   "exception-boundary"):
                    continue
                for callee in index.resolve(fn, call):
                    sub = leaks[id(callee)]
                    if sub:
                        out.append((
                            call.line,
                            f"call to {callee.qualified_name} "
                            f"({sub[0][1]})"))
                        have.add(call.line)
                        changed = True
                        break
        if not changed:
            break
    return leaks


def check_exception_boundary(project: Project,
                             cfg: AnalyzerConfig) -> List[Finding]:
    index = CallIndex(project)
    leaks = _leak_summaries(project, cfg, index)
    findings: List[Finding] = []
    for fn in project.functions():
        if not any(fn.qualified_name.endswith(sfx)
                   for sfx in cfg.exception_roots):
            continue
        for line, desc in leaks[id(fn)]:
            findings.append(Finding(
                "exception-boundary", fn.file, line,
                f"exception may escape boundary {fn.qualified_name} "
                f"uncaught: {desc}"))
    return findings


# --- check: allow hygiene ----------------------------------------------------


def check_allow_reasons(project: Project,
                        cfg: AnalyzerConfig) -> List[Finding]:
    findings: List[Finding] = []
    for path, sites in project.allows.items():
        for a in sites:
            unknown = a.rules - set(ALL_RULES)
            if unknown:
                findings.append(Finding(
                    "allow-missing-reason", path, a.line,
                    f"allow() names unknown rule(s): "
                    f"{', '.join(sorted(unknown))}"))
            if not a.reason:
                findings.append(Finding(
                    "allow-missing-reason", path, a.line,
                    f"allow({', '.join(sorted(a.rules))}) carries no "
                    f"written reason — a justification is mandatory"))
    return findings


# --- driver ------------------------------------------------------------------

CHECKS = {
    "layering": check_layering,
    "unused-include": check_unused_includes,
    "lock-order": check_lock_order,
    "lock-blocking": check_lock_blocking,
    "hot-path": check_hot_path,  # covers alloc/throw/virtual
    "exception-boundary": check_exception_boundary,
    "allow-missing-reason": check_allow_reasons,
}


def run_checks(project: Project, cfg: AnalyzerConfig,
               which: Optional[Set[str]] = None) -> List[Finding]:
    findings: List[Finding] = []
    for name, fn in CHECKS.items():
        if which is not None:
            # hot-path umbrella matches any of its three rules
            if name == "hot-path":
                if not (which & {"hot-path-alloc", "hot-path-throw",
                                 "hot-path-virtual", "hot-path"}):
                    continue
            elif name not in which:
                continue
        findings.extend(fn(project, cfg))
    if which is not None and "hot-path" not in which:
        findings = [f for f in findings
                    if not f.rule.startswith("hot-path-")
                    or f.rule in which]
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings
