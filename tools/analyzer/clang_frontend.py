"""libclang (clang.cindex) frontend for causumx-analyzer.

Builds the same IR as `cpp_frontend` from a real clang parse, using
`build/compile_commands.json` for flags. The bindings are an apt
package (`python3-clang-14` + `libclang-14-dev`), pinned in the CI
analyzer job; many dev boxes don't carry them, so everything here is
lazily imported and `available()` gates use.

The textual frontend remains authoritative for the gating scan (it is
deterministic and dependency-free); this frontend backs the CI parity
step, which cross-checks the structural skeleton — functions found,
acquisitions, throw sites, try coverage — and reports drift without
failing the build. See docs/DEVELOPMENT.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from cpp_frontend import (
    Acquisition,
    AllocSite,
    CallSite,
    ClassInfo,
    FileIR,
    FunctionInfo,
    Include,
    ThrowSite,
    TryRegion,
    WaitSite,
    strip_comments_and_strings,
    _IDENT_RE,
)

_LOCK_TYPES = {"MutexLock", "WriterMutexLock", "ReaderMutexLock"}
_MUTEX_TYPES = {"Mutex": "mutex", "SharedMutex": "shared_mutex",
                "CondVar": "condvar"}


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def _load_compdb(compdb_path: Optional[str]) -> Dict[str, List[str]]:
    """file -> extra args (include dirs, standard, defines)."""
    if not compdb_path or not os.path.exists(compdb_path):
        return {}
    with open(compdb_path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    out: Dict[str, List[str]] = {}
    for e in entries:
        args = e.get("command", "").split() or e.get("arguments", [])
        keep: List[str] = []
        i = 0
        while i < len(args):
            a = args[i]
            if a.startswith(("-I", "-D", "-std=")):
                keep.append(a)
            elif a in ("-isystem", "-include"):
                keep.append(a)
                if i + 1 < len(args):
                    keep.append(args[i + 1])
                    i += 1
            i += 1
        out[os.path.normpath(e["file"])] = keep
    return out


def _default_args(repo_root: str) -> List[str]:
    return ["-x", "c++", "-std=c++20", f"-I{os.path.join(repo_root, 'src')}"]


def build_project_entries(
        entries: Sequence[Tuple[str, str]],
        repo_root: str,
        compdb_path: Optional[str] = None) -> Dict[str, FileIR]:
    """Parse each (abs, rel) entry with libclang into FileIR."""
    import clang.cindex as ci

    compdb = _load_compdb(compdb_path)
    index = ci.Index.create()
    irs: Dict[str, FileIR] = {}
    for abs_path, rel in entries:
        args = compdb.get(os.path.normpath(abs_path)) \
            or _default_args(repo_root)
        try:
            tu = index.parse(abs_path, args=args)
        except ci.TranslationUnitLoadError:
            continue
        irs[rel] = _translate(tu, abs_path, rel)
    return irs


def _translate(tu, abs_path: str, rel: str) -> "FileIR":
    import clang.cindex as ci

    with open(abs_path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    ir = FileIR(path=rel, raw_lines=text.splitlines(),
                code_text=strip_comments_and_strings(text))
    for ident in _IDENT_RE.findall(ir.code_text):
        ir.used_names.add(ident)
    for inc in tu.get_includes():
        if inc.depth == 1:
            loc_line = inc.location.line
            raw = ir.raw_lines[loc_line - 1] if \
                0 < loc_line <= len(ir.raw_lines) else ""
            ir.includes.append(Include(
                line=loc_line,
                header=os.path.basename(str(inc.include)) if
                '"' not in raw else raw.split('"')[1],
                is_system="<" in raw))

    K = ci.CursorKind

    def in_main_file(cur) -> bool:
        f = cur.location.file
        return f is not None and os.path.normpath(f.name) == \
            os.path.normpath(abs_path)

    def walk(cur, cls_name: Optional[str]) -> None:
        for child in cur.get_children():
            if not in_main_file(child):
                continue
            kind = child.kind
            if kind in (K.NAMESPACE, K.LINKAGE_SPEC,
                        K.UNEXPOSED_DECL):
                walk(child, cls_name)
            elif kind in (K.CLASS_DECL, K.STRUCT_DECL) and \
                    child.is_definition():
                _class(child)
                walk(child, child.spelling)
            elif kind in (K.CXX_METHOD, K.FUNCTION_DECL,
                          K.CONSTRUCTOR, K.DESTRUCTOR) and \
                    child.is_definition():
                _function(child, cls_name)
            elif kind == K.ENUM_DECL:
                ir.provided_names.add(child.spelling)
                for e in child.get_children():
                    ir.provided_names.add(e.spelling)

    def _class(cur) -> None:
        info = ClassInfo(name=cur.spelling, file=rel,
                         line=cur.location.line)
        for child in cur.get_children():
            if child.kind == K.FIELD_DECL:
                tname = child.type.spelling.split("::")[-1]
                if tname in _MUTEX_TYPES:
                    info.mutex_members.append(
                        (child.spelling, _MUTEX_TYPES[tname]))
            elif child.kind == K.CXX_METHOD and \
                    child.is_virtual_method():
                info.virtual_methods.append(child.spelling)
        ir.classes.append(info)
        ir.provided_names.add(cur.spelling)

    def _function(cur, cls_name: Optional[str]) -> None:
        sem = cur.semantic_parent
        cls = cls_name
        if sem is not None and sem.kind in (K.CLASS_DECL, K.STRUCT_DECL):
            cls = sem.spelling
        parts: List[str] = [cur.spelling]
        p = sem
        while p is not None and p.kind in (
                K.NAMESPACE, K.CLASS_DECL, K.STRUCT_DECL):
            if p.spelling:
                parts.insert(0, p.spelling)
            p = p.semantic_parent
        fn = FunctionInfo(
            qualified_name="::".join(parts), name=cur.spelling, cls=cls,
            file=rel, start_line=cur.extent.start.line,
            end_line=cur.extent.end.line)
        if cls is None:
            ir.provided_names.add(cur.spelling)
        _body(cur, fn)
        ir.functions.append(fn)

    def _body(cur, fn: FunctionInfo) -> None:
        for child in cur.walk_preorder():
            kind = child.kind
            line = child.location.line
            if kind == K.VAR_DECL:
                tname = child.type.spelling.split("::")[-1]
                if tname in _LOCK_TYPES:
                    arg = ""
                    for sub in child.walk_preorder():
                        if sub.kind in (K.MEMBER_REF_EXPR, K.DECL_REF_EXPR):
                            toks = [t.spelling for t in sub.get_tokens()]
                            arg = "".join(toks)
                            break
                    parent_end = fn.end_line
                    lex = child.lexical_parent
                    if lex is not None and lex.extent.end.line:
                        parent_end = lex.extent.end.line
                    fn.acquisitions.append(Acquisition(
                        line=line,
                        kind="shared" if tname == "ReaderMutexLock"
                        else "exclusive",
                        lock_expr=arg, scope_end_line=parent_end))
                else:
                    fn.local_types.setdefault(
                        child.spelling,
                        child.type.spelling.split("::")[-1]
                        .replace("*", "").replace("&", "").strip())
            elif kind == K.CXX_THROW_EXPR:
                fn.throws.append(ThrowSite(line, "throw"))
            elif kind == K.CXX_NEW_EXPR:
                fn.allocs.append(AllocSite(line, "new"))
            elif kind == K.CALL_EXPR:
                name = child.spelling or ""
                if name == "Wait":
                    toks = [t.spelling for t in child.get_tokens()]
                    inner = "".join(toks)
                    arg = inner[inner.find("(") + 1:inner.rfind(")")]
                    fn.waits.append(WaitSite(line, arg))
                elif name:
                    fn.calls.append(CallSite(line, name, ""))
            elif kind == K.CXX_TRY_STMT:
                children = list(child.get_children())
                if not children:
                    continue
                body = children[0]
                catch_all = catch_std = False
                end_line = child.extent.end.line
                for c in children[1:]:
                    if c.kind != K.CXX_CATCH_STMT:
                        continue
                    params = [x for x in c.get_children()
                              if x.kind == K.VAR_DECL]
                    if not params:
                        catch_all = True
                    elif "exception" in params[0].type.spelling or \
                            "_error" in params[0].type.spelling:
                        catch_std = True
                fn.trys.append(TryRegion(
                    start_line=child.extent.start.line,
                    body_end_line=body.extent.end.line,
                    end_line=end_line,
                    catch_all=catch_all, catch_std=catch_std))

    walk(tu.cursor, None)
    return ir


def skeleton(ir: "FileIR") -> dict:
    """Frontend-comparable structural summary used by the parity step."""
    return {
        "functions": sorted(f.qualified_name for f in ir.functions),
        "acquisitions": sorted(
            (f.qualified_name, a.line)
            for f in ir.functions for a in f.acquisitions),
        "throws": sorted(
            (f.qualified_name, t.line)
            for f in ir.functions for t in f.throws),
        "trys": sorted(
            (f.qualified_name, r.start_line, r.catch_all or r.catch_std)
            for f in ir.functions for r in f.trys),
    }
