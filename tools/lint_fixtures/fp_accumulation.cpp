// Fixture for the fp-accumulation rule. Lines carrying EXPECT-FLAG must
// be reported with that rule by lint_determinism.py --self-test; every
// other line must stay quiet. This file is never compiled.

#include <numeric>
#include <vector>

double BadRawSum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {
    sum += x;  // EXPECT-FLAG(fp-accumulation)
  }
  return sum;
}

double BadCompoundFormsInLoop(const std::vector<double>& xs) {
  float acc = 0.0f;
  double scale = 1.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    acc -= static_cast<float>(xs[i]);  // EXPECT-FLAG(fp-accumulation)
    scale *= xs[i];                    // EXPECT-FLAG(fp-accumulation)
  }
  return acc + scale;
}

double BadAccumulate(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);  // EXPECT-FLAG(fp-accumulation)
}

double BadAutoDouble(const std::vector<double>& xs) {
  auto total = 0.5;
  for (double x : xs) total += x;  // EXPECT-FLAG(fp-accumulation)
  return total;
}

double BadWhileLoop(const std::vector<double>& xs) {
  double sum = 0.0;
  size_t i = 0;
  while (i < xs.size()) {
    sum += xs[i];  // EXPECT-FLAG(fp-accumulation)
    ++i;
  }
  return sum;
}

// Negative cases: integer accumulation is order-insensitive and fine.
long GoodIntSum(const std::vector<long>& xs) {
  long sum = 0;
  size_t count = 0;
  for (long x : xs) {
    sum += x;
    count += 1;
  }
  return sum + static_cast<long>(count);
}

// Negative case: straight-line scalar composition (no loop) is fixed
// program order — `logit += 0.8` chains in datagen are deterministic.
double GoodStraightLineComposition(double age, bool employed) {
  double logit = 0.0;
  logit += 0.04 * age;
  logit -= 1.5;
  if (employed) logit += 0.8;
  return logit;
}

// Negative case: a per-iteration local declared inside the loop resets
// every pass, so nothing accumulates across iterations.
double GoodPerIterationLocal(const std::vector<double>& xs) {
  double last = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double row_score = 1.0;
    row_score += xs[i];
    last = row_score;
  }
  return last;
}

// Negative case: the inline escape hatch silences a justified site.
double AllowedKahanStyle(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {
    // causumx-lint: allow(fp-accumulation) fixed serial order by design
    sum += x;
  }
  for (double x : xs) {
    sum += x;  // causumx-lint: allow(fp-accumulation) same-line hatch
  }
  return sum;
}

// Negative case: mentions of "sum += x" in comments or strings stay
// quiet, as does prose about std::accumulate.
const char* kDoc = "example: sum += x via std::accumulate";
