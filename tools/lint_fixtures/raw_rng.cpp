// Fixture for the raw-rng rule (see fp_accumulation.cpp for the
// EXPECT-FLAG protocol). This file is never compiled.

#include <cstdlib>
#include <random>

int BadRand() {
  return rand();  // EXPECT-FLAG(raw-rng)
}

void BadSrand(unsigned seed) {
  srand(seed);  // EXPECT-FLAG(raw-rng)
}

unsigned BadRandomDevice() {
  std::random_device rd;  // EXPECT-FLAG(raw-rng)
  return rd();
}

// Negative case: identifiers merely containing "rand" stay quiet.
int GoodIdentifiers(int operand) {
  int grand_total = operand;
  return grand_total;
}

// Negative case: the project's own seeded generator is the sanctioned
// path (util/rng.h exposes Rng; naming it here must not trip anything).
struct Rng;
int GoodSeededRng(Rng& /*rng*/) { return 0; }

// Negative case: the escape hatch for a justified site (e.g. seeding an
// integration test's port picker where determinism is irrelevant).
unsigned AllowedRandomDevice() {
  std::random_device rd;  // causumx-lint: allow(raw-rng) port picker
  return rd();
}
