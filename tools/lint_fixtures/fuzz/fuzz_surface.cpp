// Fixture for the fuzz/ scan surface: fuzz harnesses are linted with
// the same rules as src/ — a nondeterministic harness cannot reproduce
// its own crashes.
#include <unordered_map>

unsigned MixEntropy() {
  std::random_device rd;  // EXPECT-FLAG(raw-rng)
  return 0;
}

int DigestCorpus(const std::unordered_map<int, int>& counts) {
  int digest = 0;
  for (const auto& kv : counts) {  // EXPECT-FLAG(unordered-iteration)
    digest += kv.first;
  }
  return digest;
}
