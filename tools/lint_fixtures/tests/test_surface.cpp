// Fixture for the tests/ scan surface: test sources are linted with the
// same rules as src/. Lines carrying EXPECT-FLAG must be reported;
// every other line must stay quiet (the allow() hatch included).

double SumWeights(const double* w, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += w[i];  // EXPECT-FLAG(fp-accumulation)
  }
  return total;
}

double SumWeightsAllowed(const double* w, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // causumx-lint: allow(fp-accumulation) serial test oracle
    total += w[i];
  }
  return total;
}

int PickIndex(int n) {
  return rand() % n;  // EXPECT-FLAG(raw-rng)
}
