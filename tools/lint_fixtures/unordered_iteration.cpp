// Fixture for the unordered-iteration rule (see fp_accumulation.cpp for
// the EXPECT-FLAG protocol). This file is never compiled.

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

double BadReductionOverUnorderedMap(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [key, w] : weights) {  // EXPECT-FLAG(unordered-iteration)
    // The += below also trips fp-accumulation on its own line; this
    // fixture pins the loop-header finding.
    // causumx-lint: allow(fp-accumulation)
    total += w;
  }
  return total;
}

std::vector<std::string> BadOutputOrderFromUnorderedSet(
    const std::unordered_set<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& name : names) {  // EXPECT-FLAG(unordered-iteration)
    out.push_back(name);
  }
  return out;
}

// Negative case: ordered containers iterate deterministically.
std::vector<std::string> GoodOrderedMap(
    const std::map<std::string, int>& counts) {
  std::vector<std::string> out;
  for (const auto& [key, n] : counts) {
    if (n > 0) out.push_back(key);
  }
  return out;
}

// Negative case: order-insensitive consumption of an unordered map (a
// pure lookup / max scan with no reduction or output in the window).
bool GoodMembershipScan(
    const std::unordered_map<std::string, int>& counts) {
  for (const auto& [key, n] : counts) {
    if (n > 1000) return true;
  }
  return false;
}

// Negative case: the escape hatch on a sorted-downstream iteration.
std::vector<std::string> AllowedSortedAfter(
    const std::unordered_set<std::string>& names) {
  std::vector<std::string> out;
  // causumx-lint: allow(unordered-iteration) sorted before use below
  for (const auto& name : names) {
    out.push_back(name);
  }
  return out;
}
