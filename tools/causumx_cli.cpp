// causumx — command-line front end for the library.
//
// Runs the full pipeline on any CSV:
//
//   causumx --csv data.csv --group-by Country --avg Salary \
//           [--dag graph.txt | --discover pc|fci|lingam|nodag] \
//           [--k 5] [--theta 0.75] [--support 0.1] [--alpha 0.05] \
//           [--where "Attr=value"] [--json] [--top-treatments N] \
//           [--stats] [--no-cache]
//
// --stats prints the evaluation-engine cache counters (interned
// predicates, materialized bitsets, estimator memo hits/misses) after
// the summary; --no-cache runs with the caches bypassed (debugging /
// benchmarking the uncached path).
//
// Without --dag/--discover, the No-DAG strawman is used (and a warning
// printed): supply domain knowledge for trustworthy effects.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "causal/dag_io.h"
#include "causal/discovery.h"
#include "core/exploration.h"
#include "core/json_export.h"
#include "core/renderer.h"
#include "dataset/csv.h"
#include "util/string_utils.h"

using namespace causumx;

namespace {

struct CliOptions {
  std::string csv_path;
  std::vector<std::string> group_by;
  std::string avg_attribute;
  std::string dag_path;
  std::string discover;
  size_t k = 5;
  double theta = 0.75;
  double support = 0.1;
  double alpha = 0.05;
  std::string where;
  bool json = false;
  size_t top_treatments = 0;
  bool stats = false;
  bool no_cache = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: causumx --csv FILE --group-by A[,B] --avg Y\n"
               "               [--dag FILE | --discover pc|fci|lingam|nodag]\n"
               "               [--k N] [--theta F] [--support F] [--alpha F]\n"
               "               [--where \"Attr=value\"] [--json]\n"
               "               [--top-treatments N] [--stats] [--no-cache]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      opt->csv_path = v;
    } else if (arg == "--group-by") {
      const char* v = next();
      if (!v) return false;
      for (auto& part : Split(v, ',')) {
        opt->group_by.push_back(Trim(part));
      }
    } else if (arg == "--avg") {
      const char* v = next();
      if (!v) return false;
      opt->avg_attribute = v;
    } else if (arg == "--dag") {
      const char* v = next();
      if (!v) return false;
      opt->dag_path = v;
    } else if (arg == "--discover") {
      const char* v = next();
      if (!v) return false;
      opt->discover = ToLower(v);
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      opt->k = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--theta") {
      const char* v = next();
      if (!v) return false;
      opt->theta = std::atof(v);
    } else if (arg == "--support") {
      const char* v = next();
      if (!v) return false;
      opt->support = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return false;
      opt->alpha = std::atof(v);
    } else if (arg == "--where") {
      const char* v = next();
      if (!v) return false;
      opt->where = v;
    } else if (arg == "--json") {
      opt->json = true;
    } else if (arg == "--stats") {
      opt->stats = true;
    } else if (arg == "--no-cache") {
      opt->no_cache = true;
    } else if (arg == "--top-treatments") {
      const char* v = next();
      if (!v) return false;
      opt->top_treatments = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->csv_path.empty() || opt->group_by.empty() ||
      opt->avg_attribute.empty()) {
    PrintUsage();
    return false;
  }
  return true;
}

// Parses "Attr=value" / "Attr<value" / "Attr>=value" into a predicate.
SimplePredicate ParseWherePredicate(const std::string& expr,
                                    const Table& table) {
  static const std::pair<const char*, CompareOp> kOps[] = {
      {">=", CompareOp::kGe}, {"<=", CompareOp::kLe}, {"=", CompareOp::kEq},
      {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [symbol, op] : kOps) {
    const size_t pos = expr.find(symbol);
    if (pos == std::string::npos) continue;
    const std::string attr = Trim(expr.substr(0, pos));
    const std::string value = Trim(expr.substr(pos + std::strlen(symbol)));
    auto idx = table.ColumnIndex(attr);
    if (!idx) throw std::runtime_error("--where: unknown attribute " + attr);
    if (table.column(*idx).type() == ColumnType::kCategorical) {
      return SimplePredicate(attr, op, Value(value));
    }
    return SimplePredicate(attr, op, Value(std::stod(value)));
  }
  throw std::runtime_error("--where: no operator found in '" + expr + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  try {
    const Table table = ReadCsvFile(opt.csv_path);
    std::fprintf(stderr, "loaded %zu rows x %zu columns from %s\n",
                 table.NumRows(), table.NumColumns(), opt.csv_path.c_str());

    GroupByAvgQuery query;
    query.group_by = opt.group_by;
    query.avg_attribute = opt.avg_attribute;
    if (!opt.where.empty()) {
      query.where = Pattern({ParseWherePredicate(opt.where, table)});
    }

    CausalDag dag;
    if (!opt.dag_path.empty()) {
      dag = ReadDagFile(opt.dag_path);
      std::fprintf(stderr, "dag: %zu nodes, %zu edges from %s\n",
                   dag.NumNodes(), dag.NumEdges(), opt.dag_path.c_str());
    } else if (!opt.discover.empty()) {
      const std::map<std::string, DiscoveryAlgorithm> algos = {
          {"pc", DiscoveryAlgorithm::kPc},
          {"fci", DiscoveryAlgorithm::kFci},
          {"lingam", DiscoveryAlgorithm::kLingam},
          {"nodag", DiscoveryAlgorithm::kNoDag},
      };
      auto it = algos.find(opt.discover);
      if (it == algos.end()) {
        std::fprintf(stderr, "unknown --discover algorithm: %s\n",
                     opt.discover.c_str());
        return 2;
      }
      dag = DiscoverDag(table, it->second, opt.avg_attribute);
      std::fprintf(stderr, "dag: discovered by %s — %zu edges\n",
                   opt.discover.c_str(), dag.NumEdges());
    } else {
      dag = MakeNoDag(table, opt.avg_attribute);
      std::fprintf(stderr,
                   "warning: no --dag/--discover given; using the No-DAG "
                   "strawman (all attributes -> outcome). Effects are\n"
                   "unadjusted for confounding — supply a DAG for "
                   "trustworthy estimates.\n");
    }

    CauSumXConfig config;
    config.k = opt.k;
    config.theta = opt.theta;
    config.apriori_support = opt.support;
    config.treatment.alpha = opt.alpha;
    config.disable_eval_cache = opt.no_cache;

    ExplorationSession session(table, query, dag, config);
    const ExplanationSummary summary = session.Solve();

    if (opt.json) {
      std::cout << SummaryToJson(summary, &query) << "\n";
    } else {
      RenderStyle style;
      style.outcome_noun = opt.avg_attribute;
      std::cout << "\n" << query.ToSql(opt.csv_path) << "\n\n"
                << RenderSummary(summary, style);
      if (opt.top_treatments > 0) {
        std::cout << "\nTop treatments over the full relation:\n";
        std::cout << "positive:\n"
                  << RenderTreatmentList(
                         session.TopTreatments(Pattern(),
                                               TreatmentSign::kPositive,
                                               opt.top_treatments),
                         style);
        std::cout << "negative:\n"
                  << RenderTreatmentList(
                         session.TopTreatments(Pattern(),
                                               TreatmentSign::kNegative,
                                               opt.top_treatments),
                         style);
      }
    }
    if (opt.stats) {
      const EngineCacheStats stats = session.CacheStats();
      const PhaseTimer& timings = session.MiningResult().timings;
      std::printf("\nengine cache stats%s:\n",
                  opt.no_cache ? " (cache bypassed)" : "");
      std::printf("  atomic predicates interned   %llu\n",
                  (unsigned long long)stats.eval.predicates_interned);
      std::printf("  predicate bitsets built      %llu (served %llu hits)\n",
                  (unsigned long long)stats.eval.bitsets_materialized,
                  (unsigned long long)stats.eval.bitset_hits);
      std::printf("  pattern evals cached/bypass  %llu / %llu\n",
                  (unsigned long long)stats.eval.pattern_evals,
                  (unsigned long long)stats.eval.bypass_evals);
      std::printf("  numeric column views built   %llu\n",
                  (unsigned long long)stats.eval.column_views_built);
      std::printf("  estimator memo hits/misses   %llu / %llu\n",
                  (unsigned long long)stats.estimator.memo_hits,
                  (unsigned long long)stats.estimator.memo_misses);
      std::printf("  phase timings                grouping %.3fs, "
                  "treatment %.3fs\n",
                  timings.Get("grouping"), timings.Get("treatment"));
    }
    return summary.explanations.empty() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
