// causumx — command-line front end for the library.
//
// Runs the full pipeline on any CSV:
//
//   causumx --csv data.csv --group-by Country --avg Salary
//           [--dag graph.txt | --discover pc|fci|lingam|nodag]
//           [--k 5] [--theta 0.75] [--support 0.1] [--alpha 0.05]
//           [--where "Attr=value"] [--json] [--top-treatments N]
//           [--stats] [--no-cache] [--append rows.csv]
//           [--threads N] [--shards N]
//
// --shards N partitions the table into N row shards executed in
// parallel on the worker pool (0 = one shard per thread, 1 = the serial
// reference path). Results are bit-identical for every value; only the
// speed changes.
//
// --append demonstrates streaming ingestion: the query runs on data.csv,
// the rows of rows.csv (same schema, matched by header name) are
// appended through the service's delta-aware caches, and the query runs
// again — the second run extends cached bitsets and reuses CATE memos
// instead of rebuilding them. Both summaries print (two JSONL lines
// under --json).
//
// Batch mode serves many queries through one ExplanationService, so
// repeated queries share the warm predicate-bitset and CATE caches:
//
//   causumx --batch queries.jsonl [--csv data.csv]
//           [--budget-mb N] [--threads N] [--stats]
//
// Each line of queries.jsonl is one JSON request (see service/batch.h);
// results stream to stdout as JSONL in input order. --csv registers the
// file as the "default" table; requests may also name their own "csv".
// --budget-mb bounds the evictable cache bytes via LRU eviction.
//
// --stats prints the evaluation-engine cache counters (interned
// predicates, materialized bitsets, estimator memo hits/misses) after
// the summary; --no-cache runs with the caches bypassed (debugging /
// benchmarking the uncached path).
//
// Serve mode runs the embedded HTTP server (src/server/) over one
// long-lived ExplanationService, so a fleet of clients shares the warm
// caches over REST (see docs/API.md for the endpoints):
//
//   causumx serve --port 8080 [--host 0.0.0.0] [--csv data.csv]
//                 [--table NAME] [--threads N] [--shards N]
//                 [--budget-mb N] [--max-body-mb N] [--queue N]
//                 [--no-cache] [--data-dir DIR]
//
// The process listens until SIGINT/SIGTERM, then drains in-flight
// requests and exits 0.
//
// --data-dir DIR enables durable snapshots: tables restore warm from
// DIR on startup (any stale or damaged snapshot is detected and
// ignored — the table rebuilds cold), every append writes a fresh
// crash-safe snapshot, and a clean shutdown persists all tables.
//
// Snapshot mode writes a durable snapshot of a CSV without serving:
//
//   causumx snapshot --csv data.csv --data-dir DIR [--table NAME]
//                    [--shards N] [--threads N] [--no-cache]
//
// Monitor mode replays a CSV through the windowed continuous-monitoring
// subsystem (src/stream/) and prints the monitor's drift/summary events
// as JSON lines on stdout:
//
//   causumx monitor --spec spec.json --replay data.csv
//                   [--seed-rows N] [--batch-rows M] [--table NAME]
//                   [--threads N] [--shards N] [--data-dir DIR]
//
// The first --seed-rows rows register as the table (default 0: an
// empty table carrying just the CSV's schema); the remainder streams
// through the service in --batch-rows appends (default 1), the monitor
// re-evaluating at every window boundary. --data-dir persists monitor
// state alongside the table snapshots (warm restart).
//
// Without --dag/--discover, the No-DAG strawman is used (and a warning
// printed): supply domain knowledge for trustworthy effects.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <unistd.h>

#include "causal/dag_io.h"
#include "causal/discovery.h"
#include "core/exploration.h"
#include "core/json_export.h"
#include "core/renderer.h"
#include "dataset/csv.h"
#include "server/http_server.h"
#include "server/rest_api.h"
#include "service/batch.h"
#include "service/explanation_service.h"
#include "storage/file_io.h"
#include "stream/monitor.h"
#include "util/json.h"
#include "util/string_utils.h"

using namespace causumx;

namespace {

struct CliOptions {
  std::string csv_path;
  std::vector<std::string> group_by;
  std::string avg_attribute;
  std::string dag_path;
  std::string discover;
  size_t k = 5;
  double theta = 0.75;
  double support = 0.1;
  double alpha = 0.05;
  std::string where;
  bool json = false;
  size_t top_treatments = 0;
  bool stats = false;
  bool no_cache = false;
  std::string append_path;
  std::string batch_path;
  size_t budget_mb = 0;
  size_t threads = 0;
  size_t shards = 0;  // 0 = one shard per worker thread
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: causumx --csv FILE --group-by A[,B] --avg Y\n"
               "               [--dag FILE | --discover pc|fci|lingam|nodag]\n"
               "               [--k N] [--theta F] [--support F] [--alpha F]\n"
               "               [--where \"Attr=value\"] [--json]\n"
               "               [--top-treatments N] [--stats] [--no-cache]\n"
               "               [--append rows.csv] [--threads N] [--shards N]\n"
               "   or: causumx --batch FILE.jsonl [--csv FILE]\n"
               "               [--budget-mb N] [--threads N] [--shards N]\n"
               "               [--stats]\n"
               "   or: causumx serve [--port N] [--host ADDR] [--csv FILE]\n"
               "               [--table NAME] [--threads N] [--shards N]\n"
               "               [--budget-mb N] [--max-body-mb N] [--queue N]\n"
               "               [--no-cache] [--data-dir DIR]\n"
               "   or: causumx snapshot --csv FILE --data-dir DIR\n"
               "               [--table NAME] [--shards N] [--threads N]\n"
               "               [--no-cache]\n"
               "   or: causumx monitor --spec FILE --replay FILE.csv\n"
               "               [--seed-rows N] [--batch-rows M]\n"
               "               [--table NAME] [--threads N] [--shards N]\n"
               "               [--data-dir DIR]\n"
               "see docs/CLI.md for the full reference\n");
}

// ---- serve mode ------------------------------------------------------------

struct ServeOptions {
  uint16_t port = 8080;
  std::string host = "127.0.0.1";
  std::string csv_path;
  std::string table_name = "default";
  size_t threads = 0;
  size_t shards = 0;
  size_t budget_mb = 0;
  size_t max_body_mb = 8;
  size_t queue = 0;
  bool no_cache = false;
  std::string data_dir;
};

bool ParseServeArgs(int argc, char** argv, ServeOptions* opt) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--port") {
      if (!(v = next())) return false;
      opt->port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--host") {
      if (!(v = next())) return false;
      opt->host = v;
    } else if (arg == "--csv") {
      if (!(v = next())) return false;
      opt->csv_path = v;
    } else if (arg == "--table") {
      if (!(v = next())) return false;
      opt->table_name = v;
    } else if (arg == "--threads") {
      if (!(v = next())) return false;
      opt->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--shards") {
      if (!(v = next())) return false;
      opt->shards = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--budget-mb") {
      if (!(v = next())) return false;
      opt->budget_mb = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-body-mb") {
      if (!(v = next())) return false;
      opt->max_body_mb = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--queue") {
      if (!(v = next())) return false;
      opt->queue = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--no-cache") {
      opt->no_cache = true;
    } else if (arg == "--data-dir") {
      if (!(v = next())) return false;
      opt->data_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown serve argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Self-pipe for signal-driven shutdown: the handler only writes a byte
// (async-signal-safe); the main thread blocks on the read end and runs
// the orderly Stop.
int g_shutdown_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

int RunServeMode(const ServeOptions& opt) {
  ServiceOptions service_options;
  service_options.memory_budget_bytes = opt.budget_mb * (1 << 20);
  service_options.num_threads = opt.threads;
  service_options.num_shards = opt.shards;
  service_options.cache_enabled = !opt.no_cache;
  service_options.data_dir = opt.data_dir;
  ExplanationService service(service_options);

  if (!opt.csv_path.empty()) {
    // With --data-dir, LoadCsv restores the warm caches from the table's
    // snapshot when its key matches the freshly parsed CSV exactly.
    service.LoadCsv(opt.table_name, opt.csv_path);
    const auto table = service.GetTable(opt.table_name);
    std::fprintf(stderr, "loaded %zu rows x %zu columns from %s as \"%s\"\n",
                 table->NumRows(), table->NumColumns(), opt.csv_path.c_str(),
                 opt.table_name.c_str());
  } else if (!opt.data_dir.empty()) {
    const size_t restored = service.RestoreAll();
    std::fprintf(stderr, "restored %zu table(s) from %s\n", restored,
                 opt.data_dir.c_str());
  }
  if (!opt.data_dir.empty()) {
    const ServiceStats s = service.Stats();
    if (s.snapshots_restored > 0 || s.snapshots_rejected > 0) {
      std::fprintf(stderr,
                   "snapshots: %llu warm restore(s), %llu rejected "
                   "(stale/damaged -> cold rebuild)\n",
                   (unsigned long long)s.snapshots_restored,
                   (unsigned long long)s.snapshots_rejected);
    }
  }

  // The windowed continuous-monitoring surface (src/stream/): monitors
  // registered over REST observe every append and re-evaluate at window
  // boundaries; with --data-dir their state restores warm.
  MonitorRegistry monitors(service);
  if (!opt.data_dir.empty()) {
    const size_t restored_monitors = monitors.RestoreMonitors();
    if (restored_monitors > 0) {
      std::fprintf(stderr, "restored %zu monitor(s) from %s\n",
                   restored_monitors, opt.data_dir.c_str());
    }
  }

  RestApiOptions api_options;
  api_options.default_table = opt.table_name;

  HttpServerOptions server_options;
  server_options.port = opt.port;
  server_options.bind_address = opt.host;
  server_options.num_threads = opt.threads;
  server_options.max_queue = opt.queue;
  server_options.max_body_bytes = opt.max_body_mb * (1 << 20);

  // Shutdown plumbing goes in before the first request can arrive, so a
  // SIGTERM racing the startup still drains instead of killing us.
  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "error: cannot create shutdown pipe\n");
    return 2;
  }
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);

  HttpServer server(MakeRestHandler(service, monitors, api_options),
                    server_options);
  server.Start();
  std::fprintf(stderr,
               "causumx serving on http://%s:%u/ (%zu workers, queue %zu, "
               "max body %zu MB)\n",
               opt.host.c_str(), unsigned{server.port()},
               server.options().num_threads, server.options().max_queue,
               opt.max_body_mb);

  char byte = 0;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "shutting down (draining in-flight requests)...\n");
  server.Stop();

  if (!opt.data_dir.empty()) {
    // Persist every table on clean shutdown so the next start is warm.
    // In-flight work has drained, so the snapshots capture final state.
    try {
      const size_t written = service.SaveAllSnapshots();
      monitors.SaveSnapshot();
      std::fprintf(stderr, "wrote %zu snapshot(s) to %s\n", written,
                   opt.data_dir.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: snapshot write failed: %s\n", e.what());
    }
  }

  const HttpServerCounters c = server.counters();
  const ServiceStats s = service.Stats();
  std::fprintf(stderr,
               "served %llu requests on %llu connections "
               "(%llu rejected 503, %llu parse errors); "
               "%llu queries, %llu appends\n",
               (unsigned long long)c.requests_handled,
               (unsigned long long)c.connections_accepted,
               (unsigned long long)c.requests_rejected,
               (unsigned long long)c.parse_errors,
               (unsigned long long)s.queries_executed,
               (unsigned long long)s.appends_executed);
  return 0;
}

// ---- monitor mode ----------------------------------------------------------

// Re-serializes a parsed JSON value (used to rewrite the monitor spec's
// "table" binding when --table overrides it).
void DumpJson(const JsonValue& v, JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.Null();
      break;
    case JsonValue::Kind::kBool:
      w.Bool(v.AsBool());
      break;
    case JsonValue::Kind::kNumber:
      w.Double(v.AsNumber());
      break;
    case JsonValue::Kind::kString:
      w.String(v.AsString());
      break;
    case JsonValue::Kind::kArray:
      w.BeginArray();
      for (const JsonValue& item : v.AsArray()) DumpJson(item, w);
      w.EndArray();
      break;
    case JsonValue::Kind::kObject:
      w.BeginObject();
      for (const auto& [key, value] : v.AsObject()) {
        w.Key(key);
        DumpJson(value, w);
      }
      w.EndObject();
      break;
  }
}

struct MonitorCliOptions {
  std::string spec_path;
  std::string replay_path;
  size_t seed_rows = 0;
  size_t batch_rows = 1;
  std::string table_name;  // overrides the spec's "table" when set
  size_t threads = 0;
  size_t shards = 0;
  std::string data_dir;
};

bool ParseMonitorArgs(int argc, char** argv, MonitorCliOptions* opt) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--spec") {
      if (!(v = next())) return false;
      opt->spec_path = v;
    } else if (arg == "--replay") {
      if (!(v = next())) return false;
      opt->replay_path = v;
    } else if (arg == "--seed-rows") {
      if (!(v = next())) return false;
      opt->seed_rows = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--batch-rows") {
      if (!(v = next())) return false;
      opt->batch_rows = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--table") {
      if (!(v = next())) return false;
      opt->table_name = v;
    } else if (arg == "--threads") {
      if (!(v = next())) return false;
      opt->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--shards") {
      if (!(v = next())) return false;
      opt->shards = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--data-dir") {
      if (!(v = next())) return false;
      opt->data_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown monitor argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->spec_path.empty() || opt->replay_path.empty()) {
    std::fprintf(stderr, "monitor mode requires --spec FILE and --replay "
                         "FILE.csv\n");
    return false;
  }
  if (opt->batch_rows == 0) opt->batch_rows = 1;
  return true;
}

int RunMonitorMode(const MonitorCliOptions& opt) {
  std::string spec_json = ReadFileBytes(opt.spec_path);
  const std::string table_name =
      !opt.table_name.empty()
          ? opt.table_name
          : JsonValue::Parse(spec_json).GetString("table");
  if (table_name.empty()) {
    std::fprintf(stderr,
                 "monitor spec names no \"table\" and no --table given\n");
    return 2;
  }
  if (!opt.table_name.empty()) {
    // Rewrite the spec's table binding so one spec file replays against
    // any table name.
    const JsonValue spec = JsonValue::Parse(spec_json);
    JsonWriter w;
    w.BeginObject().Key("table").String(table_name);
    for (const auto& [key, value] : spec.AsObject()) {
      if (key != "table") {
        w.Key(key);
        DumpJson(value, w);
      }
    }
    w.EndObject();
    spec_json = w.str();
  }

  ServiceOptions service_options;
  service_options.num_threads = opt.threads;
  service_options.num_shards = opt.shards;
  service_options.data_dir = opt.data_dir;
  ExplanationService service(service_options);
  MonitorRegistry monitors(service);

  const Table full = ReadCsvFile(opt.replay_path);
  const size_t seed = std::min(opt.seed_rows, full.NumRows());
  service.RegisterTable(table_name,
                        std::make_shared<const Table>(full.Head(seed)));
  std::fprintf(stderr,
               "replay: %zu rows from %s (%zu seed the table, %zu stream)\n",
               full.NumRows(), opt.replay_path.c_str(), seed,
               full.NumRows() - seed);

  const auto monitor = monitors.Create(spec_json);
  uint64_t printed_seq = 0;
  auto drain_events = [&]() {
    for (const MonitorEvent& e : monitor->EventsSince(printed_seq)) {
      std::cout << e.json << "\n";
      printed_seq = e.seq;
    }
  };

  for (size_t begin = seed; begin < full.NumRows();
       begin += opt.batch_rows) {
    const size_t end = std::min(begin + opt.batch_rows, full.NumRows());
    // The append observer delivers these rows to the monitor
    // synchronously, so events are ready as soon as Append returns.
    service.Append(table_name, full.MaterializeRows(begin, end));
    drain_events();
  }
  drain_events();

  if (!opt.data_dir.empty()) {
    try {
      const size_t bytes = monitors.SaveSnapshot();
      service.SaveAllSnapshots();
      std::fprintf(stderr, "monitor snapshot: %zu bytes -> %s\n", bytes,
                   opt.data_dir.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: snapshot write failed: %s\n", e.what());
    }
  }

  const MonitorStatus status = monitor->Status();
  std::fprintf(stderr,
               "monitor %s: %llu rows observed, %llu windows evaluated, "
               "%llu events\n",
               status.id.c_str(), (unsigned long long)status.rows_observed,
               (unsigned long long)status.windows_evaluated,
               (unsigned long long)status.last_seq);
  return 0;
}

// ---- snapshot mode ---------------------------------------------------------

// `causumx snapshot` reuses the serve-mode flag set (csv/table/shards/
// threads/no-cache/data-dir); unrelated serve flags are accepted and
// ignored rather than maintaining a second parser.
int RunSnapshotMode(const ServeOptions& opt) {
  if (opt.csv_path.empty() || opt.data_dir.empty()) {
    std::fprintf(stderr,
                 "snapshot mode requires --csv FILE and --data-dir DIR\n");
    return 2;
  }
  ServiceOptions service_options;
  service_options.num_threads = opt.threads;
  service_options.num_shards = opt.shards;
  service_options.cache_enabled = !opt.no_cache;
  service_options.data_dir = opt.data_dir;
  ExplanationService service(service_options);
  // LoadCsv warm-restores from an existing matching snapshot, so
  // re-snapshotting unchanged data preserves the warm caches instead of
  // flattening them to a cold table image.
  service.LoadCsv(opt.table_name, opt.csv_path);
  const auto table = service.GetTable(opt.table_name);
  const size_t bytes = service.SaveSnapshot(opt.table_name);
  std::fprintf(stderr,
               "snapshot: %zu rows x %zu columns as \"%s\" -> %s (%zu "
               "bytes)\n",
               table->NumRows(), table->NumColumns(), opt.table_name.c_str(),
               service.SnapshotPath(opt.table_name).c_str(), bytes);
  return 0;
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      opt->csv_path = v;
    } else if (arg == "--group-by") {
      const char* v = next();
      if (!v) return false;
      for (auto& part : Split(v, ',')) {
        opt->group_by.push_back(Trim(part));
      }
    } else if (arg == "--avg") {
      const char* v = next();
      if (!v) return false;
      opt->avg_attribute = v;
    } else if (arg == "--dag") {
      const char* v = next();
      if (!v) return false;
      opt->dag_path = v;
    } else if (arg == "--discover") {
      const char* v = next();
      if (!v) return false;
      opt->discover = ToLower(v);
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      opt->k = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--theta") {
      const char* v = next();
      if (!v) return false;
      opt->theta = std::atof(v);
    } else if (arg == "--support") {
      const char* v = next();
      if (!v) return false;
      opt->support = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return false;
      opt->alpha = std::atof(v);
    } else if (arg == "--where") {
      const char* v = next();
      if (!v) return false;
      opt->where = v;
    } else if (arg == "--json") {
      opt->json = true;
    } else if (arg == "--stats") {
      opt->stats = true;
    } else if (arg == "--no-cache") {
      opt->no_cache = true;
    } else if (arg == "--top-treatments") {
      const char* v = next();
      if (!v) return false;
      opt->top_treatments = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--append") {
      const char* v = next();
      if (!v) return false;
      opt->append_path = v;
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      opt->batch_path = v;
    } else if (arg == "--budget-mb") {
      const char* v = next();
      if (!v) return false;
      opt->budget_mb = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opt->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      opt->shards = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (!opt->batch_path.empty()) return true;
  if (opt->csv_path.empty() || opt->group_by.empty() ||
      opt->avg_attribute.empty()) {
    PrintUsage();
    return false;
  }
  return true;
}

int RunBatchMode(const CliOptions& opt) {
  ServiceOptions service_options;
  service_options.memory_budget_bytes = opt.budget_mb * (1 << 20);
  service_options.num_threads = opt.threads;
  service_options.num_shards = opt.shards;
  service_options.cache_enabled = !opt.no_cache;
  ExplanationService service(service_options);
  if (!opt.csv_path.empty()) {
    service.LoadCsv("default", opt.csv_path);
    const auto table = service.GetTable("default");
    std::fprintf(stderr, "loaded %zu rows x %zu columns from %s\n",
                 table->NumRows(), table->NumColumns(),
                 opt.csv_path.c_str());
  }
  BatchOptions batch_options;
  batch_options.emit_cache_stats = opt.stats;
  const BatchSummary summary =
      RunBatchFile(service, opt.batch_path, std::cout, batch_options);
  std::fprintf(stderr, "batch: %zu requests, %zu ok, %zu failed",
               summary.requests, summary.succeeded, summary.failed);
  if (service.options().memory_budget_bytes > 0) {
    std::fprintf(stderr, ", cache %zu / %zu bytes", service.CacheBytes(),
                 service.options().memory_budget_bytes);
  }
  std::fprintf(stderr, "\n");
  return summary.failed == 0 ? 0 : 1;
}

// Streaming demo: query, append the delta CSV through the service's
// delta-aware caches, query again. Returns the after-append exit status.
int RunAppendMode(const CliOptions& opt,
                  std::shared_ptr<const Table> table,
                  const GroupByAvgQuery& query, const CausalDag& dag,
                  const CauSumXConfig& config) {
  if (opt.top_treatments > 0) {
    std::fprintf(stderr,
                 "warning: --top-treatments is ignored with --append\n");
  }
  ServiceOptions service_options;
  service_options.cache_enabled = !opt.no_cache;
  service_options.num_threads = opt.threads;
  service_options.num_shards = opt.shards;
  ExplanationService service(service_options);
  const size_t base_rows = table->NumRows();
  service.RegisterTable("default", std::move(table));

  auto run_phase = [&](const char* label) {
    const CauSumXResult r = service.Explain("default", query, dag, config);
    if (opt.json) {
      std::cout << SummaryToJson(r.summary, &query) << "\n";
    } else {
      RenderStyle style;
      style.outcome_noun = opt.avg_attribute;
      std::cout << "\n== " << label << " ==\n"
                << RenderSummary(r.summary, style);
    }
    return r;
  };

  run_phase("before append");
  const auto grown = service.AppendCsv("default", opt.append_path);
  std::fprintf(stderr,
               "appended %zu rows from %s (%zu rows total, version %llu)\n",
               grown->NumRows() - base_rows, opt.append_path.c_str(),
               grown->NumRows(), (unsigned long long)grown->version());
  const CauSumXResult after = run_phase("after append");

  if (opt.stats) {
    const EvalEngineStats e = service.Engine("default")->Stats();
    const EstimatorCacheStats& m = after.cache_stats.estimator;
    std::printf("\nstreaming cache stats (post-append engine):\n");
    std::printf("  bitsets extended / rebuilt    %llu / %llu\n",
                (unsigned long long)e.bitsets_extended,
                (unsigned long long)e.bitsets_materialized);
    std::printf("  column views extended / built %llu / %llu\n",
                (unsigned long long)e.column_views_extended,
                (unsigned long long)e.column_views_built);
    std::printf("  estimator memo hits/misses    %llu / %llu "
                "(%llu migrated)\n",
                (unsigned long long)m.memo_hits,
                (unsigned long long)m.memo_misses,
                (unsigned long long)m.memo_migrated);
  }
  return after.summary.explanations.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve") {
    ServeOptions serve_opt;
    if (!ParseServeArgs(argc, argv, &serve_opt)) return 2;
    try {
      return RunServeMode(serve_opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "monitor") {
    MonitorCliOptions monitor_opt;
    if (!ParseMonitorArgs(argc, argv, &monitor_opt)) return 2;
    try {
      return RunMonitorMode(monitor_opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "snapshot") {
    ServeOptions snap_opt;
    if (!ParseServeArgs(argc, argv, &snap_opt)) return 2;
    try {
      return RunSnapshotMode(snap_opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  try {
    if (!opt.batch_path.empty()) return RunBatchMode(opt);

    const auto table =
        std::make_shared<const Table>(ReadCsvFile(opt.csv_path));
    std::fprintf(stderr, "loaded %zu rows x %zu columns from %s\n",
                 table->NumRows(), table->NumColumns(), opt.csv_path.c_str());

    GroupByAvgQuery query;
    query.group_by = opt.group_by;
    query.avg_attribute = opt.avg_attribute;
    if (!opt.where.empty()) {
      query.where = Pattern({ParseWherePredicate(opt.where, *table)});
    }

    CausalDag dag;
    if (!opt.dag_path.empty()) {
      dag = ReadDagFile(opt.dag_path);
      std::fprintf(stderr, "dag: %zu nodes, %zu edges from %s\n",
                   dag.NumNodes(), dag.NumEdges(), opt.dag_path.c_str());
    } else if (!opt.discover.empty()) {
      const std::map<std::string, DiscoveryAlgorithm> algos = {
          {"pc", DiscoveryAlgorithm::kPc},
          {"fci", DiscoveryAlgorithm::kFci},
          {"lingam", DiscoveryAlgorithm::kLingam},
          {"nodag", DiscoveryAlgorithm::kNoDag},
      };
      auto it = algos.find(opt.discover);
      if (it == algos.end()) {
        std::fprintf(stderr, "unknown --discover algorithm: %s\n",
                     opt.discover.c_str());
        return 2;
      }
      dag = DiscoverDag(*table, it->second, opt.avg_attribute);
      std::fprintf(stderr, "dag: discovered by %s — %zu edges\n",
                   opt.discover.c_str(), dag.NumEdges());
    } else {
      dag = MakeNoDag(*table, opt.avg_attribute);
      std::fprintf(stderr,
                   "warning: no --dag/--discover given; using the No-DAG "
                   "strawman (all attributes -> outcome). Effects are\n"
                   "unadjusted for confounding — supply a DAG for "
                   "trustworthy estimates.\n");
    }

    CauSumXConfig config;
    config.k = opt.k;
    config.theta = opt.theta;
    config.apriori_support = opt.support;
    config.treatment.alpha = opt.alpha;
    config.disable_eval_cache = opt.no_cache;
    config.num_threads = opt.threads;
    config.num_shards = opt.shards;

    if (!opt.append_path.empty()) {
      return RunAppendMode(opt, table, query, dag, config);
    }

    ExplorationSession session(table, query, dag, config);
    const ExplanationSummary summary = session.Solve();

    if (opt.json) {
      std::cout << SummaryToJson(summary, &query) << "\n";
    } else {
      RenderStyle style;
      style.outcome_noun = opt.avg_attribute;
      std::cout << "\n" << query.ToSql(opt.csv_path) << "\n\n"
                << RenderSummary(summary, style);
      if (opt.top_treatments > 0) {
        std::cout << "\nTop treatments over the full relation:\n";
        std::cout << "positive:\n"
                  << RenderTreatmentList(
                         session.TopTreatments(Pattern(),
                                               TreatmentSign::kPositive,
                                               opt.top_treatments),
                         style);
        std::cout << "negative:\n"
                  << RenderTreatmentList(
                         session.TopTreatments(Pattern(),
                                               TreatmentSign::kNegative,
                                               opt.top_treatments),
                         style);
      }
    }
    if (opt.stats) {
      const EngineCacheStats stats = session.CacheStats();
      const PhaseTimer& timings = session.MiningResult().timings;
      std::printf("\nengine cache stats%s:\n",
                  opt.no_cache ? " (cache bypassed)" : "");
      std::printf("  atomic predicates interned   %llu\n",
                  (unsigned long long)stats.eval.predicates_interned);
      std::printf("  predicate bitsets built      %llu (served %llu hits)\n",
                  (unsigned long long)stats.eval.bitsets_materialized,
                  (unsigned long long)stats.eval.bitset_hits);
      std::printf("  pattern evals cached/bypass  %llu / %llu\n",
                  (unsigned long long)stats.eval.pattern_evals,
                  (unsigned long long)stats.eval.bypass_evals);
      std::printf("  numeric column views built   %llu\n",
                  (unsigned long long)stats.eval.column_views_built);
      std::printf("  cache bytes (bitsets/views)  %zu / %zu\n",
                  stats.eval.bitset_bytes, stats.eval.view_bytes);
      std::printf("  estimator memo hits/misses   %llu / %llu\n",
                  (unsigned long long)stats.estimator.memo_hits,
                  (unsigned long long)stats.estimator.memo_misses);
      std::printf("  phase timings                grouping %.3fs, "
                  "treatment %.3fs\n",
                  timings.Get("grouping"), timings.Get("treatment"));
    }
    return summary.explanations.empty() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
