#!/usr/bin/env python3
"""Header-comment lint for the public API directories.

Fails (exit 1) when a header under the given paths has an undocumented
declaration — the same class of finding `doxygen` reports as "Member X
is not documented", but dependency-free so CI can gate on it without
installing doxygen. Checked, per header:

  * the file starts with a file-level comment block;
  * every namespace-scope declaration (class/struct/enum, free function,
    using alias, variable) has a comment on the line directly above it;
  * every declaration in a `public:` section of a class/struct has a
    comment directly above it or a trailing `//` comment on its first
    line.

Exempt: preprocessor lines, namespace braces, access specifiers,
`= delete` / `= default` special members, friend declarations, and
everything inside function/enum/initializer bodies (only the
declaration's first line is linted).

Usage: check_api_docs.py PATH [PATH...]   (directories recurse to *.h)
"""

import re
import sys
from pathlib import Path

ACCESS_RE = re.compile(r"^(public|private|protected)\s*:$")
NAMESPACE_RE = re.compile(r"^(inline\s+)?namespace\b")
CLASS_OPEN_RE = re.compile(
    r"^(template\s*<[^;]*>\s*)?(class|struct)\s+(\w+)\s*(final\s*)?"
    r"(:[^;{]*)?{?\s*$"
)
EXEMPT_RE = re.compile(r"=\s*(delete|default)\s*;\s*$|^friend\b")


def strip_block_comments(text: str):
    """Replaces /* ... */ spans with spaces (newlines kept) and returns
    (text, set of line indexes that were entirely comment)."""
    out = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append(("", True))
                continue
            rest = line[end + 2:]
            out.append((rest, rest.strip() == ""))
            in_block = False
            continue
        kept, was_comment = [], False
        i = 0
        while i < len(line):
            start = line.find("/*", i)
            if start < 0:
                kept.append(line[i:])
                break
            kept.append(line[i:start])
            was_comment = True
            end = line.find("*/", start + 2)
            if end < 0:
                in_block = True
                break
            i = end + 2
        joined = "".join(kept)
        out.append((joined, was_comment and joined.strip() == ""))
    return out


def brace_balance(code: str) -> int:
    quote, prev, bal = None, "", 0
    for ch in code:
        if quote:
            if ch == quote and prev != "\\":
                quote = None
            prev = "" if prev == "\\" else ch
            continue
        if ch in "\"'":
            quote = ch
            continue
        if ch == "{":
            bal += 1
        elif ch == "}":
            bal -= 1
    return bal


def lint_header(path: Path) -> list[str]:
    problems = []
    raw_lines = path.read_text().splitlines()
    if not raw_lines or not raw_lines[0].startswith("//"):
        problems.append(f"{path}:1: header must start with a file comment")

    processed = strip_block_comments(path.read_text())

    depth = 0       # brace depth across the whole file
    ns_depth = 0    # how many of those braces are namespaces
    class_stack = []  # (body_depth, access) per open class/struct
    prev_adjacent_comment = False
    pending_until_depth = None   # consuming a decl/body: resume when
    pending_needs_semi = False   # depth back here (+ ';' if required)

    for lineno, (code, was_block_comment) in enumerate(processed, 1):
        stripped = re.sub(r"//.*", "", code).strip()
        line_for_msg = code.strip()
        is_pure_comment = was_block_comment or (
            code.strip().startswith("//") and stripped == ""
        )

        if code.strip() == "" or is_pure_comment:
            prev_adjacent_comment = is_pure_comment or (
                prev_adjacent_comment and code.strip() == "" and False
            )
            continue

        if stripped.startswith("#"):
            # Preprocessor: no scope change, keeps comment adjacency.
            continue

        bal = brace_balance(stripped)

        if pending_until_depth is not None:
            depth += bal
            while class_stack and depth < class_stack[-1][0]:
                class_stack.pop()
            if depth <= pending_until_depth and (
                not pending_needs_semi or stripped.endswith(";")
                or ";" in stripped
            ):
                if depth <= pending_until_depth and (
                    ";" in stripped or (not pending_needs_semi and bal < 0)
                    or stripped.endswith("}")
                ):
                    pending_until_depth = None
            prev_adjacent_comment = False
            continue

        if ACCESS_RE.match(stripped):
            if class_stack:
                class_stack[-1] = (
                    class_stack[-1][0],
                    stripped.rstrip(":").strip(),
                )
            prev_adjacent_comment = False
            continue

        if NAMESPACE_RE.match(stripped):
            depth += bal
            ns_depth += max(bal, 0)
            prev_adjacent_comment = False
            continue

        if stripped in ("{", "}", "};"):
            depth += bal
            ns_depth = min(ns_depth, depth)
            while class_stack and depth < class_stack[-1][0]:
                class_stack.pop()
            prev_adjacent_comment = False
            continue

        ns_scope = depth == ns_depth and not class_stack
        in_public = bool(class_stack) and depth == class_stack[-1][0] \
            and class_stack[-1][1] == "public"

        if (ns_scope or in_public) and not EXEMPT_RE.search(stripped):
            documented = prev_adjacent_comment or "//" in code
            if not documented:
                problems.append(
                    f"{path}:{lineno}: undocumented public declaration: "
                    f"{line_for_msg[:70]}"
                )

        class_match = CLASS_OPEN_RE.match(stripped)
        if class_match and (ns_scope or in_public or class_stack):
            access = "public" if class_match.group(2) == "struct" \
                else "private"
            # A type nested in a non-public section is not public API:
            # nothing inside it is linted.
            if class_stack and class_stack[-1][1] != "public":
                access = "private"
            if "{" in stripped:
                depth += bal
                class_stack.append((depth, access))
            else:
                # Brace on a later line: treat it as arriving immediately
                # (this codebase puts it on the same line).
                class_stack.append((depth + 1, access))
        else:
            start_depth = depth
            depth += bal
            while class_stack and depth < class_stack[-1][0]:
                class_stack.pop()
            terminated = (
                (";" in stripped and depth <= start_depth)
                or (bal == 0 and stripped.endswith("}"))
            )
            if not terminated:
                pending_until_depth = start_depth
                pending_needs_semi = bal == 0
        prev_adjacent_comment = False

    return problems


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    headers = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            headers.extend(sorted(p.rglob("*.h")))
        else:
            headers.append(p)
    all_problems = []
    for header in headers:
        all_problems.extend(lint_header(header))
    for problem in all_problems:
        print(problem)
    print(
        f"check_api_docs: {len(headers)} headers, "
        f"{len(all_problems)} undocumented declarations"
    )
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
