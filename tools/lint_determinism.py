#!/usr/bin/env python3
"""Determinism lint for the CauSumX C++ tree.

The engine's contract is bit-identical results across thread counts,
shard counts, cache modes, and append orders (ROADMAP "bit-identical"
invariants; the differential harness in tests/ enforces it end to end).
The three bug classes that historically break that contract are all
statically visible:

  fp-accumulation      Raw floating-point reduction outside the blessed
                       numeric layers: `x += ...` on a double/float
                       declared OUTSIDE the loop doing the accumulating
                       (the sum crosses iterations, so its value depends
                       on iteration order), or any std::accumulate.
                       Order-sensitive FP sums must go through
                       util/stats (KahanSum / pairwise reducers) or the
                       kernel layer, which own the fixed-order
                       guarantees. Straight-line scalar composition
                       (`logit += 0.8` on a per-row local) is fixed
                       program order and stays quiet.
  unordered-iteration  Range-for over std::unordered_map/set feeding a
                       reduction or output sequence. Iteration order is
                       implementation-defined, so anything
                       order-sensitive must sort first (or iterate an
                       ordered mirror).
  raw-rng              rand()/srand()/std::random_device outside
                       util/rng. All randomness flows through the seeded
                       SplitMix64/Philox Rng so runs replay exactly.

Findings are heuristic (this is a grep with scoping, not a compiler);
false positives are silenced inline, on the offending line or the line
above:

    sum += x;  // causumx-lint: allow(fp-accumulation) fixed serial order

Usage:
    tools/lint_determinism.py [paths...]     # default: src/ tests/
                                             #          tools/ fuzz/
    tools/lint_determinism.py --self-test    # run the fixture suite
    tools/lint_determinism.py --list-rules

Directory walks skip checked-in lint/analyzer fixture trees (their
violations are deliberate).

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, NamedTuple, Optional, Set

# Files whose whole job is FP accumulation: the blessed numeric layers.
FP_EXEMPT_BASENAMES = re.compile(r"^(stats\.[^/]+|kernels[^/]*)$")
FP_EXEMPT_DIRS = ("util",)  # exemption applies only inside src/util/

# The one home randomness is allowed to live in.
RNG_EXEMPT = re.compile(r"(^|/)util/rng[^/]*$")

ALLOW_RE = re.compile(r"//\s*causumx-lint:\s*allow\(([a-z\-,\s]+)\)")

RULES = {
    "fp-accumulation": (
        "raw floating-point accumulation; route order-sensitive sums "
        "through util/stats (KahanSum) or the kernel layer"
    ),
    "unordered-iteration": (
        "iteration over an unordered container feeds a reduction or "
        "output sequence; iteration order is implementation-defined — "
        "sort keys first"
    ),
    "raw-rng": (
        "direct rand()/std::random_device; all randomness must flow "
        "through the seeded util/rng generators"
    ),
}


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    detail: str


def strip_noise(line: str) -> str:
    """Removes string/char literals and // comments from one line.

    Keeps the line length stable where it can so column positions stay
    meaningful; block comments are handled by the caller's state.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote)
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


DECL_FP_RE = re.compile(
    r"\b(?:double|float)\s+(?:\w+\s*,\s*)*(\w+(?:\s*,\s*\w+)*)\s*(?:[={;(\[]|$)"
)
DECL_FP_AUTO_RE = re.compile(r"\bauto\s+(\w+)\s*=\s*[^;]*?\d+\.\d")
# Non-FP declarations shadow an earlier FP declaration of the same name
# (file-level tracking is scope-blind; the nearest declaration wins).
DECL_INT_RE = re.compile(
    r"\b(?:int|long|short|bool|char|size_t|unsigned|u?int\d+_t|ssize_t)"
    r"(?:\s+long)?\s+(\w+)\s*(?:[={;(\[]|$)"
)
DECL_INT_AUTO_RE = re.compile(r"\bauto\s+(\w+)\s*=\s*\d+\s*[;,)]")
DECL_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*(\w+)"
)
DECL_ORDERED_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset|vector|deque|list)"
    r"\s*<[^;{]*?>\s*&?\s*(\w+)"
)
UNORDERED_ALIAS_HINT_RE = re.compile(r"unordered", re.IGNORECASE)
COMPOUND_FP_RE = re.compile(r"\b(\w+(?:\.\w+|->\w+|\[[^\]]*\])*)\s*[+\-*]=")
ACCUMULATE_RE = re.compile(r"\bstd::accumulate\s*\(")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[^;:]*:\s*([^)]+)\)")
RAND_RE = re.compile(r"(?<![\w:.])(?:s?rand)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\bstd::random_device\b")
OUTPUT_HINT_RE = re.compile(r"(<<|push_back|emplace_back|append|\+=)")


def fp_exempt(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    base = parts[-1]
    return (
        len(parts) >= 2
        and parts[-2] in FP_EXEMPT_DIRS
        and FP_EXEMPT_BASENAMES.match(base) is not None
    )


def rng_exempt(path: str) -> bool:
    return RNG_EXEMPT.search(path.replace(os.sep, "/")) is not None


def allowed_rules(raw_lines: List[str], idx: int) -> Set[str]:
    """Rules silenced for line `idx` (0-based): hatch on it or just above."""
    rules: Set[str] = set()
    for look in (idx, idx - 1):
        if 0 <= look < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[look])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_text(path: str, text: str) -> List[Finding]:
    raw_lines = text.splitlines()

    # Strip block comments with line-granular state, then literals and
    # line comments, so detection regexes never fire inside prose.
    code_lines: List[str] = []
    in_block = False
    for raw in raw_lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                code_lines.append("")
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        # Handle (possibly several) /* ... */ spans on one line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
        code_lines.append(strip_noise(line))

    # Pass 1: record declarations of interest per identifier, in line
    # order. Scope tracking is deliberately coarse (a whole file is one
    # scope), so at a use site the *nearest preceding* declaration wins —
    # `long sum` after `double sum` makes later `sum +=` integral.
    fp_decls: dict = {}  # ident -> [(line_idx, is_fp)]
    container_decls: dict = {}  # ident -> [(line_idx, is_unordered)]
    for idx, line in enumerate(code_lines):
        for m in DECL_FP_RE.finditer(line):
            for name in re.split(r"\s*,\s*", m.group(1)):
                if name:
                    fp_decls.setdefault(name, []).append((idx, True))
        for m in DECL_FP_AUTO_RE.finditer(line):
            fp_decls.setdefault(m.group(1), []).append((idx, True))
        for m in DECL_INT_RE.finditer(line):
            fp_decls.setdefault(m.group(1), []).append((idx, False))
        for m in DECL_INT_AUTO_RE.finditer(line):
            fp_decls.setdefault(m.group(1), []).append((idx, False))
        for m in DECL_UNORDERED_RE.finditer(line):
            container_decls.setdefault(m.group(1), []).append((idx, True))
        for m in DECL_ORDERED_RE.finditer(line):
            container_decls.setdefault(m.group(1), []).append((idx, False))

    # Loop spans: for each line, the start line of the innermost
    # enclosing for/while loop (brace-counted; None outside any loop).
    # An accumulation is order-sensitive only when the accumulator was
    # declared before its enclosing loop began.
    innermost_loop_start: List[Optional[int]] = [None] * len(code_lines)
    loop_stack: List[List[int]] = []  # [start_idx, open_braces_remaining]
    pending_loop: Optional[int] = None  # loop header seen, '{' not yet
    for idx, line in enumerate(code_lines):
        if pending_loop is None and re.search(
            r"\b(?:for|while)\s*\(", line
        ):
            pending_loop = idx
        for ch in line:
            if ch == "{":
                if pending_loop is not None:
                    loop_stack.append([pending_loop, 1])
                    pending_loop = None
                elif loop_stack:
                    loop_stack[-1][1] += 1
            elif ch == "}":
                if loop_stack:
                    loop_stack[-1][1] -= 1
                    if loop_stack[-1][1] == 0:
                        loop_stack.pop()
        if (
            pending_loop is not None
            and line.strip().endswith(";")
            and line.count("(") == line.count(")")
        ):
            # Braceless single-statement loop body: the statement line(s)
            # count as inside; close it at the semicolon.
            innermost_loop_start[idx] = pending_loop
            pending_loop = None
        if loop_stack:
            innermost_loop_start[idx] = loop_stack[-1][0]

    def nearest(decls: dict, ident: str, at_idx: int):
        """(decl_line, kind) of the nearest declaration of `ident` at or
        before `at_idx` (falls forward to the first one for uses that
        precede any declaration, e.g. a use above a header's member
        list). None when never declared in this file."""
        entries = decls.get(ident)
        if not entries:
            return None
        best = None
        for line_idx, kind in entries:
            if line_idx <= at_idx:
                best = (line_idx, kind)
            else:
                break
        return best if best is not None else entries[0]

    findings: List[Finding] = []

    def emit(idx: int, rule: str, detail: str) -> None:
        if rule in allowed_rules(raw_lines, idx):
            return
        findings.append(Finding(path, idx + 1, rule, detail))

    check_fp = not fp_exempt(path)
    check_rng = not rng_exempt(path)

    for idx, line in enumerate(code_lines):
        if check_fp:
            loop_start = innermost_loop_start[idx]
            for m in COMPOUND_FP_RE.finditer(line):
                if loop_start is None:
                    break  # straight-line composition: fixed program order
                target = m.group(1)
                root = re.split(r"[.\->\[]", target)[0]
                decl = nearest(fp_decls, root, idx) or nearest(
                    fp_decls, target, idx
                )
                if decl is not None and decl[1] and decl[0] < loop_start:
                    emit(
                        idx,
                        "fp-accumulation",
                        f"`{m.group(0).strip()}` on floating-point "
                        f"`{target}` accumulates across loop iterations",
                    )
            if ACCUMULATE_RE.search(line):
                emit(idx, "fp-accumulation", "std::accumulate call")

        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1).strip()
            root = re.split(r"[.\->\[(]", expr)[0].strip(" &*")
            container = nearest(container_decls, root, idx)
            if (container is not None and container[1]) or (
                container is None and UNORDERED_ALIAS_HINT_RE.search(expr)
            ):
                # Only order-sensitive consumption is a defect: look for a
                # reduction/output in the loop header or the lines below.
                window = " ".join(code_lines[idx : idx + 8])
                if OUTPUT_HINT_RE.search(window):
                    emit(
                        idx,
                        "unordered-iteration",
                        f"range-for over unordered `{root or expr}` "
                        "feeding a reduction/output",
                    )

        if check_rng:
            if RAND_RE.search(line):
                emit(idx, "raw-rng", "rand()/srand() call")
            if RANDOM_DEVICE_RE.search(line):
                emit(idx, "raw-rng", "std::random_device use")

    return findings


CPP_EXTS = (".h", ".hpp", ".cc", ".cpp", ".cxx", ".inl")

# Subdirectories holding deliberate-violation fixtures (this lint's own
# suite and the architectural analyzer's); pruned from directory walks.
# A fixture root passed explicitly (as --self-test does) still walks.
SKIP_DIR_NAMES = {"lint_fixtures", "fixtures"}


def collect_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = [d for d in dirs if d not in SKIP_DIR_NAMES]
                for name in sorted(names):
                    if name.endswith(CPP_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def run_lint(paths: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            findings.extend(lint_text(path, fh.read()))
    return findings


# --- self-test ---------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*EXPECT-FLAG\(([a-z\-]+)\)")


def self_test(fixture_dir: str) -> int:
    """Fixture files encode expectations inline: a line carrying
    `// EXPECT-FLAG(<rule>)` must be reported with exactly that rule;
    every other reported line is a false positive. Both directions fail
    the self-test."""
    failures = 0
    fixture_files = collect_files([fixture_dir])
    if not fixture_files:
        print(f"self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 1
    for path in fixture_files:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        expected = {}  # line (1-based) -> rule
        for idx, raw in enumerate(text.splitlines()):
            m = EXPECT_RE.search(raw)
            if m:
                expected[idx + 1] = m.group(1)
        got = {(f.line, f.rule) for f in lint_text(path, text)}
        for line, rule in sorted(expected.items()):
            if (line, rule) not in got:
                print(f"self-test MISS: {path}:{line} expected {rule}")
                failures += 1
        for line, rule in sorted(got):
            if expected.get(line) != rule:
                print(f"self-test FALSE-POSITIVE: {path}:{line} {rule}")
                failures += 1
    total = sum(
        len(EXPECT_RE.findall(open(p, encoding="utf-8").read()))
        for p in fixture_files
    )
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(
        f"self-test: ok — {len(fixture_files)} fixture(s), "
        f"{total} expectation(s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_determinism.py",
        description="Determinism lint for the CauSumX C++ tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/dirs (default: src/ tests/ tools/ fuzz/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the checked-in fixture suite and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, blurb in RULES.items():
            print(f"{rule}: {blurb}")
        return 0

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(os.path.join(repo_root, "tools", "lint_fixtures"))

    paths = args.paths or [
        os.path.join(repo_root, d)
        for d in ("src", "tests", "tools", "fuzz")
        if os.path.isdir(os.path.join(repo_root, d))
    ]
    findings = run_lint(paths)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.detail}")
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s); silence "
            "intentional sites with  // causumx-lint: allow(<rule>)"
        )
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
