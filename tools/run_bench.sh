#!/usr/bin/env bash
# Runs the engine-facing benchmarks and writes their results as JSON:
#
#   BENCH_micro.json             Google Benchmark JSON (kernel microbenches)
#   BENCH_phase_breakdown.json   per-dataset phase runtimes, cached vs
#                                cache-bypassed, plus cache counters
#   BENCH_kernels.json           vectorized-kernel throughput per dispatch
#                                tier vs the pre-kernel scalar loops, plus
#                                the compressed-segment byte reduction
#
# Usage: tools/run_bench.sh [output-dir]
# Env:   BUILD_DIR (default: build), CAUSUMX_BENCH_SCALE (default: 0.2)
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${1:-.}"
mkdir -p "$OUT_DIR"

wrote=()
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_phase_breakdown
if cmake --build "$BUILD_DIR" -j --target bench_micro 2>/dev/null; then
  "$BUILD_DIR/bench_micro" \
    --benchmark_out="$OUT_DIR/BENCH_micro.json" \
    --benchmark_out_format=json
  wrote+=("$OUT_DIR/BENCH_micro.json")
else
  echo "bench_micro unavailable (Google Benchmark not found) — skipping"
fi

cmake --build "$BUILD_DIR" -j --target bench_kernels

"$BUILD_DIR/bench_phase_breakdown" --json "$OUT_DIR/BENCH_phase_breakdown.json"
wrote+=("$OUT_DIR/BENCH_phase_breakdown.json")
"$BUILD_DIR/bench_kernels" --json "$OUT_DIR/BENCH_kernels.json"
wrote+=("$OUT_DIR/BENCH_kernels.json")

echo "wrote ${wrote[*]}"
