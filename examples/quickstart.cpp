// Quickstart: the smallest end-to-end CauSumX run.
//
// Builds a tiny table by hand, declares a causal DAG, asks for an
// explanation of a group-by-average view, and prints it. Mirrors the
// README's "5 minutes to first explanation" walkthrough.

#include <cstdio>
#include <iostream>

#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/synthetic.h"

int main() {
  using namespace causumx;

  // 1. Get a dataset. Here: the paper's synthetic schema (Section 6.1) —
  //    groups G, grouping attributes G1..G3, treatments T1..T4, outcome
  //    O = T1 - T2 + T3 - T4. Swap in ReadCsvFile(...) for your own data.
  SyntheticOptions data_opt;
  data_opt.num_rows = 2000;
  data_opt.num_treatment_attrs = 4;
  GeneratedDataset ds = MakeSyntheticDataset(data_opt);

  // 2. Pose the aggregate view: SELECT G, AVG(O) FROM D GROUP BY G.
  GroupByAvgQuery query = ds.default_query;
  std::cout << "Query: " << query.ToSql(ds.name) << "\n\n";

  // 3. Configure and run CauSumX: at most 3 insights covering >= 75% of
  //    the groups.
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.75;
  config.treatment.alpha = 0.05;
  // The synthetic group-by key is unique per tuple, so the FD-based
  // attribute partition is vacuous; use the generator's intended split.
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  // Per-group fallback patterns are single-tuple groups here — disable.
  config.grouping.include_per_group_patterns = false;

  CauSumXResult result = RunCauSumX(ds.table, query, ds.dag, config);

  // 4. Print the machine-readable summary...
  std::printf("groups=%zu covered=%zu explainability=%.2f\n",
              result.summary.num_groups, result.summary.covered_groups,
              result.summary.total_explainability);
  for (const auto& exp : result.summary.explanations) {
    std::printf("  grouping: %s\n", exp.grouping_pattern.ToString().c_str());
    if (exp.positive) {
      std::printf("    + %s (CATE %.2f, p=%.2g)\n",
                  exp.positive->pattern.ToString().c_str(),
                  exp.positive->effect.cate, exp.positive->effect.p_value);
    }
    if (exp.negative) {
      std::printf("    - %s (CATE %.2f, p=%.2g)\n",
                  exp.negative->pattern.ToString().c_str(),
                  exp.negative->effect.cate, exp.negative->effect.p_value);
    }
  }

  // 5. ...and the natural-language rendering.
  std::cout << "\n" << RenderSummary(result.summary, ds.style);

  // Phase timings (the Fig. 14 breakdown).
  for (const auto& [phase, seconds] : result.timings.phases()) {
    std::printf("phase %-10s %.3fs\n", phase.c_str(), seconds);
  }
  return 0;
}
