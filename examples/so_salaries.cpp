// The paper's running example (Examples 1.1/1.2, Figs. 1, 2 and 6):
// explain AVG(Salary) per Country on the Stack Overflow replica, first
// over all attributes (Fig. 2), then restricted to sensitive attributes
// (Fig. 6) to surface demographic disparities.

#include <cstdio>
#include <iostream>

#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/stackoverflow.h"

int main() {
  using namespace causumx;

  GeneratedDataset ds = MakeStackOverflowDataset();
  std::printf("Stack Overflow replica: %zu rows, %zu attributes\n",
              ds.table.NumRows(), ds.table.NumColumns());
  std::cout << "Query: " << ds.default_query.ToSql("Stack-Overflow")
            << "\n\n";

  // --- The aggregate view itself (the Fig. 1 bar chart, as text). ---------
  const AggregateView view =
      AggregateView::Evaluate(ds.table, ds.default_query);
  std::printf("%-16s %10s %8s\n", "Country", "AVG(Salary)", "n");
  for (const auto& g : view.groups()) {
    std::printf("%-16s %10.0f %8zu\n", g.KeyString().c_str(), g.average,
                g.count);
  }

  // --- Fig. 2: the k=3, theta=1 explanation summary. ----------------------
  CauSumXConfig config;
  config.k = 3;
  config.theta = 1.0;
  std::cout << "\n=== Causal explanation summary (k=3, theta=1) ===\n";
  CauSumXResult result = RunCauSumX(ds.table, ds.default_query, ds.dag,
                                    config);
  std::cout << RenderSummary(result.summary, ds.style);

  // --- Fig. 6: sensitive attributes only. ----------------------------------
  CauSumXConfig sensitive = config;
  sensitive.treatment_attribute_allowlist = {"Gender", "Ethnicity", "Age",
                                             "SexualOrientation"};
  std::cout << "\n=== Sensitive-attribute summary (Fig. 6 protocol) ===\n";
  CauSumXResult bias = RunCauSumX(ds.table, ds.default_query, ds.dag,
                                  sensitive);
  std::cout << RenderSummary(bias.summary, ds.style);

  return 0;
}
