// Causal-discovery demo (the Section 6.6 / Table 4 protocol): run PC,
// FCI, LiNGAM and the No-DAG strawman on a dataset replica, compare the
// discovered structures against the ground-truth DAG, and show how the
// explanation summary shifts with the DAG.

#include <cstdio>
#include <iostream>

#include "causal/discovery.h"
#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/german.h"

int main() {
  using namespace causumx;

  GeneratedDataset ds = MakeGermanDataset();
  std::printf("%-10s %8s %8s %18s\n", "algorithm", "edges", "density",
              "diff-vs-truth(skel)");
  std::printf("%-10s %8zu %8.3f %18s\n", "truth", ds.dag.NumEdges(),
              ds.dag.Density(), "-");

  const DiscoveryAlgorithm algos[] = {
      DiscoveryAlgorithm::kPc, DiscoveryAlgorithm::kFci,
      DiscoveryAlgorithm::kLingam, DiscoveryAlgorithm::kNoDag};
  for (DiscoveryAlgorithm algo : algos) {
    const CausalDag dag = DiscoverDag(ds.table, algo,
                                      ds.default_query.avg_attribute);
    std::printf("%-10s %8zu %8.3f %18zu\n", DiscoveryAlgorithmName(algo),
                dag.NumEdges(), dag.Density(),
                dag.EdgeDifference(ds.dag, /*ignore_direction=*/true));
  }

  // Show the effect of the DAG on the final explanation.
  CauSumXConfig config;
  config.k = 3;
  config.theta = 0.5;
  config.estimator.min_group_size = 5;
  config.treatment.alpha = 0.1;

  std::cout << "\n=== Summary with ground-truth DAG ===\n";
  std::cout << RenderSummary(
      RunCauSumX(ds.table, ds.default_query, ds.dag, config).summary,
      ds.style);

  const CausalDag pc_dag = DiscoverDag(ds.table, DiscoveryAlgorithm::kPc,
                                       ds.default_query.avg_attribute);
  std::cout << "\n=== Summary with PC-discovered DAG ===\n";
  std::cout << RenderSummary(
      RunCauSumX(ds.table, ds.default_query, pc_dag, config).summary,
      ds.style);

  // DOT export for visual inspection (pipe into `dot -Tpng`).
  std::cout << "\n// ground-truth DAG in DOT format:\n"
            << ds.dag.ToDot("German");
  return 0;
}
