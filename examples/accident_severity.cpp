// The Accidents case study (Fig. 7): explain AVG(Severity) per City on
// the US-Accidents replica. Regional grouping patterns (City -> Region)
// should surface weather-driven positive treatments and
// infrastructure-driven negative ones.

#include <cstdio>
#include <iostream>

#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/accidents.h"

int main() {
  using namespace causumx;

  AccidentsOptions opt;
  opt.num_rows = 120'000;  // bench-sized; raise toward 2.8M for full scale
  opt.num_cities = 64;
  GeneratedDataset ds = MakeAccidentsDataset(opt);
  std::printf("Accidents replica: %zu rows, %zu attributes, %d cities\n",
              ds.table.NumRows(), ds.table.NumColumns(),
              static_cast<int>(opt.num_cities));
  std::cout << "Query: " << ds.default_query.ToSql("Accidents") << "\n\n";

  CauSumXConfig config;
  config.k = 4;       // one insight per region, like Fig. 7
  config.theta = 0.9;
  config.apriori_support = 0.05;

  CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  std::cout << RenderSummary(result.summary, ds.style);

  std::printf(
      "\n%zu grouping candidates, %zu with treatments, %zu CATEs "
      "evaluated\n",
      result.num_grouping_candidates, result.num_candidates_with_treatment,
      result.treatment_patterns_evaluated);
  for (const auto& [phase, seconds] : result.timings.phases()) {
    std::printf("phase %-10s %.3fs\n", phase.c_str(), seconds);
  }
  return 0;
}
