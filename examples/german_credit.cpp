// The German Credit case study (Fig. 18): explain AVG(RiskScore) per
// loan Purpose. German has no FDs from Purpose, so every group needs its
// own per-group grouping pattern; some purposes stay unexplained when no
// treatment is statistically significant (exactly as the paper reports
// for the four low-support purposes).

#include <cstdio>
#include <iostream>

#include "core/causumx.h"
#include "core/renderer.h"
#include "datagen/german.h"

int main() {
  using namespace causumx;

  GeneratedDataset ds = MakeGermanDataset();
  std::printf("German replica: %zu rows, %zu attributes\n",
              ds.table.NumRows(), ds.table.NumColumns());
  std::cout << "Query: " << ds.default_query.ToSql("German") << "\n\n";

  CauSumXConfig config;
  config.k = 5;
  config.theta = 0.5;  // full coverage is unreachable here (paper: 6/10)
  config.estimator.min_group_size = 5;  // 1000-row dataset
  config.treatment.alpha = 0.1;

  CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  std::cout << RenderSummary(result.summary, ds.style);

  std::printf("\ncoverage satisfied: %s (%zu/%zu purposes)\n",
              result.summary.coverage_satisfied ? "yes" : "no",
              result.summary.covered_groups, result.summary.num_groups);
  return 0;
}
