// Interactive exploration: the paper ends Example 1.2 with "the user can
// continue the exploration by varying parameters in CauSumX". This
// example shows the intended workflow — mine once, then sweep k/theta
// instantly, drill into one group's top treatments, and export JSON for
// a UI.

#include <cstdio>
#include <iostream>

#include "core/exploration.h"
#include "core/json_export.h"
#include "core/renderer.h"
#include "datagen/stackoverflow.h"
#include "util/timer.h"

int main() {
  using namespace causumx;

  StackOverflowOptions opt;
  opt.num_rows = 10000;
  GeneratedDataset ds = MakeStackOverflowDataset(opt);

  CauSumXConfig config;
  config.k = 3;
  config.theta = 1.0;

  Timer timer;
  ExplorationSession session(ds.table, ds.default_query, ds.dag, config);
  ExplanationSummary first = session.Solve();
  std::printf("first solve (mining + selection): %.2fs\n\n",
              timer.Seconds());
  std::cout << RenderSummary(first, ds.style);

  // Vary parameters — only the selection LP re-runs.
  timer.Reset();
  std::printf("\nparameter sweep (selection only):\n");
  std::printf("%4s %7s %16s %10s\n", "k", "theta", "explainability",
              "coverage");
  for (size_t k : {1, 2, 3, 5}) {
    for (double theta : {0.5, 1.0}) {
      const ExplanationSummary s = session.Solve(k, theta);
      std::printf("%4zu %7.2f %16.0f %9.0f%%\n", k, theta,
                  s.total_explainability, 100 * s.CoverageFraction());
    }
  }
  std::printf("sweep time: %.3fs\n", timer.Seconds());

  // Drill into one grouping pattern: top-3 positive treatments for
  // European countries (the paper's UI feature).
  const Pattern europe(
      {SimplePredicate("Continent", CompareOp::kEq, Value("Europe"))});
  std::printf("\ntop-3 positive treatments for Continent = Europe:\n");
  for (const auto& t :
       session.TopTreatments(europe, TreatmentSign::kPositive, 3)) {
    const auto [lo, hi] = t.effect.ConfidenceInterval();
    std::printf("  %-60.60s CATE %8.0f  [%.0f, %.0f]\n",
                t.pattern.ToString().c_str(), t.effect.cate, lo, hi);
  }

  // Machine-readable export for a front end.
  const std::string json = SummaryToJson(first, &ds.default_query);
  std::printf("\nJSON export (%zu bytes): %.120s...\n", json.size(),
              json.c_str());
  return 0;
}
